"""The ONEX online query processor — paper Algorithm 2 and §5.3.

Queries never touch the raw subsequences wholesale. A similarity query
first finds the *best matching representative* (DTW against the compact
R-Space, pruned by lower bounds and early abandoning), then searches
inside the selected group in the order induced by the Local Sequence
Index: members whose stored ED-to-representative is closest to the
query→representative DTW are tried first (§5.3, last bullet).

The ED–DTW triangle inequality (Lemma 2) is what makes this sound: when
the representative is within ``ST/2`` of the query, every member of its
group is within ``ST``.
"""

from __future__ import annotations

import bisect
import dataclasses
import heapq
import math
import threading
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

import numpy as np

from repro.core.results import Match, SeasonalGroup, SeasonalResult
from repro.core.rspace import LengthBucket, RSpace
from repro.data.dataset import Dataset
from repro.distances.batch import (
    BATCH_CHUNK,
    chunk_sizes,
    dtw_batch,
    dtw_pairs,
    lb_keogh_batch,
    lb_keogh_reverse_batch,
    lb_keogh_reverse_stacked,
    lb_kim_batch,
    lb_kim_stacked,
    sliding_minmax,
)
from repro.distances.dtw import dtw, resolve_window
from repro.distances.lower_bounds import lb_keogh, lb_kim
from repro.exceptions import QueryError
from repro.utils.validation import as_float_array


@dataclass
class QueryStats:
    """Work counters for one query (used by the ablation benches).

    The ``cascade_*`` fields attribute every kill to the cascade stage
    responsible — LB_Kim, LB_Keogh (candidate vs query envelope),
    reversed LB_Keogh (query vs candidate envelope), or the DP's early
    abandon — across both the representative scan and the in-group
    refinement. When one fused bound (the max of LB_Kim and an
    LB_Keogh direction) prunes a candidate, the kill is credited to
    the cheapest stage that would have sufficed alone. The serving
    layer merges these across workers and surfaces the totals in its
    ``info`` op.
    """

    reps_examined: int = 0
    reps_pruned_lb: int = 0
    reps_abandoned: int = 0
    rep_dtw_full: int = 0
    members_examined: int = 0
    members_pruned_lb: int = 0  # batch path only: LB-rejected before any DP
    members_abandoned: int = 0
    lengths_visited: int = 0
    cascade_kim: int = 0
    cascade_keogh: int = 0
    cascade_keogh_reverse: int = 0
    cascade_dtw_abandon: int = 0
    stopped_at_half_st: bool = False

    @property
    def rep_prune_rate(self) -> float:
        if self.reps_examined == 0:
            return 0.0
        return (self.reps_pruned_lb + self.reps_abandoned) / self.reps_examined

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another stats object's counters into this one.

        The batch executor fans refinement across worker threads whose
        thread-local counters would otherwise be lost; it merges them
        back so the caller's ``last_stats`` covers the whole batch.
        Field-driven so counters added to this dataclass later are
        merged automatically (ints sum, bools OR).
        """
        for spec in dataclasses.fields(self):
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if isinstance(mine, bool):
                setattr(self, spec.name, mine or theirs)
            else:
                setattr(self, spec.name, mine + theirs)


@dataclass(frozen=True)
class _RepScan:
    """Outcome of scanning one length's representatives."""

    group_index: int
    dtw_raw: float
    dtw_normalized: float


def _attribute_lb_prunes(
    stats: QueryStats, kim_values: np.ndarray, bound: float, reverse: bool
) -> None:
    """Split fused lower-bound kills between LB_Kim and LB_Keogh.

    ``kim_values`` are the LB_Kim bounds of the *pruned* candidates;
    anything LB_Kim alone could have killed is credited to it, the rest
    to the LB_Keogh direction (``reverse`` names which one) that pushed
    the fused ``max`` bound over the threshold.
    """
    kim_hits = int(np.count_nonzero(kim_values >= bound))
    stats.cascade_kim += kim_hits
    rest = int(kim_values.size) - kim_hits
    if reverse:
        stats.cascade_keogh_reverse += rest
    else:
        stats.cascade_keogh += rest


class QueryProcessor:
    """Executes Algorithm 2 over a built R-Space.

    Parameters
    ----------
    rspace:
        The representative space (with GTI payloads) to query.
    dataset:
        The normalized dataset the R-Space was built from (used to
        materialize member subsequences).
    st:
        The similarity threshold the base was built with (normalized).
    window:
        DTW band spec used for all online DTW computations.
    group_search_width:
        Maximum number of member candidates examined inside the selected
        group; ``None`` examines all members (with early-abandoning DTW).
        Smaller values trade accuracy for speed (ablation: Fig. 7/8).
    use_lower_bounds:
        Toggle LB_Kim / LB_Keogh pruning of representatives (ablation).
    median_ordering:
        Scan representatives in the §5.3 median-sum-out order instead of
        storage order (ablation).
    n_probe:
        Extension beyond the paper: search the ``n_probe`` groups with
        the closest representatives instead of only the single best one.
        ``1`` (the default) is the paper's behaviour; larger values
        trade time for accuracy (see ``bench_ablation_nprobe``).
    use_batch_kernels:
        Run the representative scan and in-group search through the
        vectorized batch kernels of :mod:`repro.distances.batch`
        (default). The batch cascade is exact — it returns the same
        matches as the scalar path — and is what makes the scan fast on
        wide buckets; disable for the scalar reference path (ablation
        and ``bench_batch_kernels``). Note that with lower bounds
        enabled the batch scan orders candidates by their lower bound,
        superseding ``median_ordering``; the median-ordering ablation
        therefore requires either ``use_lower_bounds=False`` or the
        scalar path.
    """

    def __init__(
        self,
        rspace: RSpace,
        dataset: Dataset,
        st: float,
        window: int | float | None = 0.1,
        group_search_width: int | None = None,
        use_lower_bounds: bool = True,
        median_ordering: bool = True,
        n_probe: int = 1,
        use_batch_kernels: bool = True,
    ) -> None:
        if n_probe < 1:
            raise QueryError(f"n_probe must be >= 1, got {n_probe}")
        self.rspace = rspace
        self.dataset = dataset
        self.st = float(st)
        self.window = window
        self.group_search_width = group_search_width
        self.use_lower_bounds = use_lower_bounds
        self.median_ordering = median_ordering
        self.n_probe = int(n_probe)
        self.use_batch_kernels = bool(use_batch_kernels)
        # Per-thread work counters: the serving layer fans queries over
        # a thread pool, and shared counters would race (and misreport
        # any single query's work). Each thread observes its own stats.
        self._thread_stats = threading.local()

    @property
    def last_stats(self) -> QueryStats:
        """Work counters of the calling thread's most recent query."""
        stats = getattr(self._thread_stats, "stats", None)
        if stats is None:
            stats = QueryStats()
            self._thread_stats.stats = stats
        return stats

    @last_stats.setter
    def last_stats(self, stats: QueryStats) -> None:
        self._thread_stats.stats = stats

    # ------------------------------------------------------------------
    # Class I: similarity queries (Algorithm 2.A)
    # ------------------------------------------------------------------
    def best_match(
        self,
        query: np.ndarray,
        length: int | None = None,
        k: int = 1,
        stop_at_half_st: bool = True,
    ) -> list[Match]:
        """Best match(es) for a sample sequence (Q1).

        Parameters
        ----------
        query:
            The sample sequence ``seq`` (already on the dataset's
            normalized scale).
        length:
            ``Match = Exact(L)``: only subsequences of length ``L`` are
            considered. ``None`` means ``Match = Any``: all indexed
            lengths, visited in the §5.3 order.
        k:
            Number of matches to return (from the selected group).
        stop_at_half_st:
            Stop visiting further lengths as soon as a representative
            within ``ST/2`` is found (§5.3's first bullet); Lemma 2 then
            already guarantees every member of that group is within ST.

        Returns
        -------
        list[Match]
            Up to ``k`` matches sorted by normalized DTW.
        """
        query = as_float_array(query, "query")
        self.last_stats = QueryStats()
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")

        if length is not None:
            bucket = self.rspace.bucket(int(length))
            self.last_stats.lengths_visited = 1
            scans = self._scan_representatives(bucket, query, math.inf)
            if not scans:
                raise QueryError(
                    f"no representative of length {length} reachable; "
                    "widen the DTW window"
                )
            return self.search_groups(bucket, scans, query, k)

        best_bucket: LengthBucket | None = None
        best_scans: list[_RepScan] = []
        for candidate_length in self.rspace.search_length_order(query.shape[0]):
            bucket = self.rspace.bucket(candidate_length)
            self.last_stats.lengths_visited += 1
            bound = (
                math.inf if not best_scans else best_scans[0].dtw_normalized
            )
            scans = self._scan_representatives(bucket, query, bound)
            if not scans:
                continue
            if (
                not best_scans
                or scans[0].dtw_normalized < best_scans[0].dtw_normalized
            ):
                best_bucket, best_scans = bucket, scans
            if stop_at_half_st and scans[0].dtw_normalized <= self.st / 2.0:
                self.last_stats.stopped_at_half_st = True
                break
        if best_bucket is None or not best_scans:
            raise QueryError("no representative reachable; widen the DTW window")
        return self.search_groups(best_bucket, best_scans, query, k)

    def scan_length(self, length: int, query: np.ndarray) -> list[_RepScan]:
        """Representative scan of one length with an open (infinite) bound.

        The scatter half of the cluster tier's ``Match = Any`` flow: a
        shard worker scans each of its owned lengths with no carried
        bound, and the router replays the §5.3 sweep over the gathered
        per-length minima. Exact by construction — the cross-length
        bound in :meth:`best_match` only prunes work, never changes a
        bucket's best representative — so the replayed sweep selects
        the same bucket the single-process sweep would (``n_probe`` is
        required to be 1: with more probes the carried bound also trims
        the probe list, which the open-bound scan cannot reproduce).
        """
        if self.n_probe != 1:
            raise QueryError(
                "scan_length requires n_probe == 1 (the sharded sweep "
                f"replay is only exact for single-probe scans), got "
                f"{self.n_probe}"
            )
        query = as_float_array(query, "query")
        self.last_stats = QueryStats()
        bucket = self.rspace.bucket(int(length))
        self.last_stats.lengths_visited = 1
        return self._scan_representatives(bucket, query, math.inf)

    def refine_scans(
        self,
        length: int,
        scans: "list[_RepScan]",
        query: np.ndarray,
        k: int = 1,
    ) -> list[Match]:
        """The in-group refinement half of :meth:`best_match`, standalone.

        The gather half of the cluster tier's ``Match = Any`` flow: once
        the router has replayed the length sweep over shard scans, the
        winning length's owner runs exactly the :meth:`search_groups`
        call :meth:`best_match` would have issued.
        """
        query = as_float_array(query, "query")
        self.last_stats = QueryStats()
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        bucket = self.rspace.bucket(int(length))
        return self.search_groups(bucket, scans, query, k)

    def within_threshold(
        self,
        query: np.ndarray,
        st: float | None = None,
        length: int | None = None,
        refine: bool = True,
        lengths: "Sequence[int] | None" = None,
    ) -> list[Match]:
        """All sequences guaranteed similar to ``query`` within ``st``.

        Returns the members of every group whose representative has
        normalized DTW to the query at most ``st / 2`` — by Lemma 2 each
        such member is within ``st`` of the query. With ``refine=True``
        the actual member DTWs are computed (and members are sorted by
        them); otherwise the representative's distance is reported for
        all members, which is faster but coarser. ``lengths`` restricts
        the sweep to an explicit subset of indexed lengths (the cluster
        tier sends each shard its owned lengths); it is mutually
        exclusive with ``length``.
        """
        query = as_float_array(query, "query")
        st = self.st if st is None else float(st)
        if st <= 0:
            raise QueryError(f"similarity threshold must be positive, got {st}")
        if lengths is not None and length is not None:
            raise QueryError("pass either length or lengths, not both")
        if lengths is not None:
            lengths = sorted(int(value) for value in lengths)
        elif length is not None:
            lengths = [int(length)]
        else:
            lengths = self.rspace.lengths
        matches: list[Match] = []
        for candidate_length in lengths:
            bucket = self.rspace.bucket(candidate_length)
            denominator = 2.0 * max(query.shape[0], bucket.length)
            for group_index, group in enumerate(bucket.groups):
                rep_distance = (
                    dtw(
                        query,
                        group.representative,
                        window=self.window,
                        abandon_above=st / 2.0 * denominator,
                    )
                    / denominator
                )
                if rep_distance > st / 2.0:
                    continue
                for ssid in group.member_ids:
                    values = self.dataset.subsequence(ssid)
                    if refine:
                        raw = dtw(query, values, window=self.window)
                        normalized = raw / denominator
                    else:
                        raw = rep_distance * denominator
                        normalized = rep_distance
                    matches.append(
                        Match(
                            ssid=ssid,
                            values=values,
                            dtw=raw,
                            dtw_normalized=normalized,
                            group=(bucket.length, group_index),
                        )
                    )
        matches.sort()
        return matches

    # ------------------------------------------------------------------
    # Class II: seasonal similarity queries (Algorithm 2.B)
    # ------------------------------------------------------------------
    def seasonal(
        self,
        length: int,
        series: int | None = None,
        min_members: int = 2,
    ) -> SeasonalResult:
        """Recurring similarity at one length (Q2).

        User-driven (``series`` given): clusters of subsequences of that
        length drawn from the sample series — its internally recurring
        shapes. Data-driven (``series=None``): every cluster of similar
        subsequences of that length across the whole dataset.
        """
        bucket = self.rspace.bucket(int(length))
        if min_members < 1:
            raise QueryError(f"min_members must be >= 1, got {min_members}")
        if series is not None and not 0 <= series < len(self.dataset):
            raise QueryError(
                f"series index {series} out of range for N={len(self.dataset)}"
            )
        groups: list[SeasonalGroup] = []
        for group_index, group in enumerate(bucket.groups):
            members = (
                group.member_ids
                if series is None
                else group.members_of_series(series)
            )
            if len(members) >= min_members:
                groups.append(
                    SeasonalGroup(
                        length=bucket.length,
                        group_index=group_index,
                        members=tuple(members),
                    )
                )
        return SeasonalResult(length=bucket.length, series=series, groups=tuple(groups))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _rep_order(self, bucket: LengthBucket) -> Iterator[int]:
        if self.median_ordering:
            return bucket.median_out_order()
        return iter(range(bucket.n_groups))

    def _scan_representatives(
        self, bucket: LengthBucket, query: np.ndarray, bound_normalized: float
    ) -> list[_RepScan]:
        """Find the ``n_probe`` representatives closest to the query (§5.2).

        ``bound_normalized`` seeds the best-so-far from previously visited
        lengths so pruning carries across lengths. Returns the qualifying
        scans sorted by distance (empty when nothing beats the bound).
        With ``n_probe == 1`` the pruning threshold is the running best;
        with more probes it is the running ``n_probe``-th best.
        """
        if self.use_batch_kernels:
            return self._scan_representatives_batch(bucket, query, bound_normalized)
        stats = self.last_stats
        denominator = 2.0 * max(query.shape[0], bucket.length)
        same_length = query.shape[0] == bucket.length
        query_radius = resolve_window(query.shape[0], bucket.length, self.window)
        seed_raw = (
            math.inf
            if math.isinf(bound_normalized)
            else bound_normalized * denominator
        )
        # Max-heap (negated) of the n_probe best (raw distance, index).
        top: list[tuple[float, int]] = []

        def prune_bound() -> float:
            if len(top) == self.n_probe:
                return min(seed_raw, -top[0][0])
            return seed_raw

        for group_index in self._rep_order(bucket):
            group = bucket.groups[group_index]
            representative = group.representative
            stats.reps_examined += 1
            bound = prune_bound()
            if self.use_lower_bounds and bound < math.inf:
                if lb_kim(query, representative) >= bound:
                    stats.reps_pruned_lb += 1
                    stats.cascade_kim += 1
                    continue
                # The stored envelope is only admissible when its radius
                # covers the band the online DTW uses.
                env = group.rep_envelope
                if (
                    same_length
                    and env.radius >= query_radius
                    and lb_keogh(query, env) >= bound
                ):
                    stats.reps_pruned_lb += 1
                    stats.cascade_keogh_reverse += 1
                    continue
            distance = dtw(
                query,
                representative,
                window=self.window,
                abandon_above=bound if bound < math.inf else None,
            )
            if distance == math.inf:
                stats.reps_abandoned += 1
                stats.cascade_dtw_abandon += 1
                continue
            stats.rep_dtw_full += 1
            if distance < prune_bound() or len(top) < self.n_probe:
                if len(top) == self.n_probe:
                    heapq.heapreplace(top, (-distance, group_index))
                else:
                    heapq.heappush(top, (-distance, group_index))
        scans = [
            _RepScan(
                group_index=index,
                dtw_raw=-negated,
                dtw_normalized=-negated / denominator,
            )
            for negated, index in top
            if -negated <= seed_raw
        ]
        scans.sort(key=lambda scan: scan.dtw_raw)
        return scans

    def _scan_representatives_batch(
        self, bucket: LengthBucket, query: np.ndarray, bound_normalized: float
    ) -> list[_RepScan]:
        """Batch-kernel twin of :meth:`_scan_representatives`.

        The whole representative stack goes through the vectorized
        cascade at once: LB_Kim and (same-length) reversed LB_Keogh over
        the full stack, then chunked batch DTW over the survivors in
        ascending lower-bound order so early chunks tighten the shared
        early-abandon bound for later ones. Exact: returns the same
        probes as the scalar scan.
        """
        stats = self.last_stats
        denominator = 2.0 * max(query.shape[0], bucket.length)
        same_length = query.shape[0] == bucket.length
        radius = resolve_window(query.shape[0], bucket.length, self.window)
        seed_raw = (
            math.inf
            if math.isinf(bound_normalized)
            else bound_normalized * denominator
        )
        reps = bucket.representatives_matrix
        n_groups = reps.shape[0]
        stats.reps_examined += n_groups

        if self.use_lower_bounds:
            # Admissible per-representative lower bound: LB_Kim, maxed
            # with the reversed LB_Keogh (query vs representative
            # envelope) when the lengths match. Sorting by it puts
            # likely-best representatives in the opening chunk, which
            # supersedes the scalar path's median-out ordering.
            kim_bounds = lb_kim_batch(query, reps)
            lower_bounds = kim_bounds
            if same_length:
                stack = bucket.rep_envelope_stack(radius)
                lower_bounds = np.maximum(
                    kim_bounds, lb_keogh_reverse_batch(query, stack)
                )
            candidates = np.argsort(lower_bounds, kind="stable")
            if math.isfinite(seed_raw):
                keep = lower_bounds[candidates] < seed_raw
                stats.reps_pruned_lb += int(n_groups - keep.sum())
                _attribute_lb_prunes(
                    stats, kim_bounds[candidates[~keep]], seed_raw, reverse=True
                )
                candidates = candidates[keep]
        else:
            # Lower bounds disabled (ablation): keep the scalar path's
            # scan order so median_ordering stays meaningful here too.
            lower_bounds = None
            candidates = np.fromiter(
                self._rep_order(bucket), dtype=np.intp, count=n_groups
            )

        # Max-heap (negated) of the n_probe best (raw distance, index).
        top: list[tuple[float, int]] = []

        def prune_bound() -> float:
            if len(top) == self.n_probe:
                return min(seed_raw, -top[0][0])
            return seed_raw

        start = 0
        for size in chunk_sizes(len(candidates)):
            chunk = candidates[start : start + size]
            start += size
            bound = prune_bound()
            if lower_bounds is not None and math.isfinite(bound):
                keep = lower_bounds[chunk] < bound
                stats.reps_pruned_lb += int(len(chunk) - keep.sum())
                _attribute_lb_prunes(
                    stats, kim_bounds[chunk[~keep]], bound, reverse=True
                )
                chunk = chunk[keep]
                if not len(chunk):
                    continue
            distances = dtw_batch(
                query,
                reps[chunk],
                radius,
                abandon_above=bound if math.isfinite(bound) else None,
            )
            for group_index, distance in zip(
                chunk.tolist(), distances.tolist(), strict=True
            ):
                if distance == math.inf:
                    stats.reps_abandoned += 1
                    stats.cascade_dtw_abandon += 1
                    continue
                stats.rep_dtw_full += 1
                if distance < prune_bound() or len(top) < self.n_probe:
                    if len(top) == self.n_probe:
                        heapq.heapreplace(top, (-distance, group_index))
                    else:
                        heapq.heappush(top, (-distance, group_index))
        scans = [
            _RepScan(
                group_index=index,
                dtw_raw=-negated,
                dtw_normalized=-negated / denominator,
            )
            for negated, index in top
            if -negated <= seed_raw
        ]
        scans.sort(key=lambda scan: scan.dtw_raw)
        return scans

    def scan_representatives_stacked(
        self,
        bucket: LengthBucket,
        queries: np.ndarray,
        bounds_normalized: np.ndarray | None = None,
    ) -> list[list[_RepScan]]:
        """Representative scan for a whole stack of equal-length queries.

        The serving layer's batch executor groups incoming queries by
        length and runs this instead of Q separate scans: the lower
        bounds of every ``(query, representative)`` pair are computed as
        one stacked matrix, and the surviving pairs advance through one
        :func:`~repro.distances.batch.dtw_pairs` DP per chunk stage, so
        the Python-level DP loop is paid per *stage* instead of per
        query. Exact: query ``q`` receives precisely the scans
        ``_scan_representatives(bucket, queries[q],
        bounds_normalized[q])`` would return — each query keeps its own
        candidate order, its own prune bound, and its own chunk
        schedule; only the arithmetic is fused.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] == 0:
            raise QueryError(
                "stacked scan requires a (n_queries, length) query matrix"
            )
        n_queries, n = queries.shape
        if bounds_normalized is None:
            bounds_normalized = np.full(n_queries, math.inf)
        bounds_normalized = np.asarray(bounds_normalized, dtype=np.float64)
        stats = self.last_stats
        denominator = 2.0 * max(n, bucket.length)
        same_length = n == bucket.length
        radius = resolve_window(n, bucket.length, self.window)
        reps = bucket.representatives_matrix
        n_groups = reps.shape[0]
        stats.reps_examined += n_groups * n_queries
        seeds_raw = bounds_normalized * denominator  # inf stays inf

        if self.use_lower_bounds:
            kim_matrix = lb_kim_stacked(queries, reps)
            lower_bounds = kim_matrix
            if same_length:
                stack = bucket.rep_envelope_stack(radius)
                lower_bounds = np.maximum(
                    kim_matrix, lb_keogh_reverse_stacked(queries, stack)
                )
            order = np.argsort(lower_bounds, axis=1, kind="stable")
        else:
            kim_matrix = None
            lower_bounds = None
            base = np.fromiter(
                self._rep_order(bucket), dtype=np.intp, count=n_groups
            )
            order = np.broadcast_to(base, (n_queries, n_groups))

        candidate_lists: list[np.ndarray] = []
        for q in range(n_queries):
            candidates = order[q]
            if lower_bounds is not None and math.isfinite(seeds_raw[q]):
                keep = lower_bounds[q][candidates] < seeds_raw[q]
                stats.reps_pruned_lb += int(n_groups - keep.sum())
                _attribute_lb_prunes(
                    stats,
                    kim_matrix[q][candidates[~keep]],
                    float(seeds_raw[q]),
                    reverse=True,
                )
                candidates = candidates[keep]
            candidate_lists.append(candidates)

        # One max-heap (negated raw distance, group index) per query.
        tops: list[list[tuple[float, int]]] = [[] for _ in range(n_queries)]

        def prune_bound(q: int) -> float:
            top = tops[q]
            if len(top) == self.n_probe:
                return min(seeds_raw[q], -top[0][0])
            return float(seeds_raw[q])

        # Every query follows its own chunk schedule (small bound-setting
        # chunk first); stages advance in lockstep so each stage is one
        # fused dtw_pairs call over every query's current chunk.
        schedules = [
            list(chunk_sizes(len(candidates))) for candidates in candidate_lists
        ]
        positions = [0] * n_queries
        n_stages = max((len(schedule) for schedule in schedules), default=0)
        for stage in range(n_stages):
            pair_queries: list[int] = []
            pair_groups: list[int] = []
            pair_bounds: list[float] = []
            for q in range(n_queries):
                if stage >= len(schedules[q]):
                    continue
                size = schedules[q][stage]
                chunk = candidate_lists[q][positions[q] : positions[q] + size]
                positions[q] += size
                bound = prune_bound(q)
                if lower_bounds is not None and math.isfinite(bound):
                    keep = lower_bounds[q][chunk] < bound
                    stats.reps_pruned_lb += int(len(chunk) - keep.sum())
                    _attribute_lb_prunes(
                        stats, kim_matrix[q][chunk[~keep]], bound, reverse=True
                    )
                    chunk = chunk[keep]
                if not len(chunk):
                    continue
                pair_queries.extend([q] * len(chunk))
                pair_groups.extend(chunk.tolist())
                pair_bounds.extend([bound] * len(chunk))
            if not pair_queries:
                continue
            query_rows = np.asarray(pair_queries, dtype=np.intp)
            group_rows = np.asarray(pair_groups, dtype=np.intp)
            abandon = np.asarray(pair_bounds)
            distances = dtw_pairs(
                queries[query_rows],
                reps[group_rows],
                radius,
                abandon_above=None if np.isinf(abandon).all() else abandon,
            )
            # Pairs are query-major and, within a query, in candidate
            # order — iterating them updates each heap in exactly the
            # sequence the per-query scan would.
            for q, group_index, distance in zip(
                pair_queries, pair_groups, distances.tolist()
            , strict=True):
                if distance == math.inf:
                    stats.reps_abandoned += 1
                    stats.cascade_dtw_abandon += 1
                    continue
                stats.rep_dtw_full += 1
                top = tops[q]
                if distance < prune_bound(q) or len(top) < self.n_probe:
                    if len(top) == self.n_probe:
                        heapq.heapreplace(top, (-distance, group_index))
                    else:
                        heapq.heappush(top, (-distance, group_index))

        results: list[list[_RepScan]] = []
        for q in range(n_queries):
            scans = [
                _RepScan(
                    group_index=index,
                    dtw_raw=-negated,
                    dtw_normalized=-negated / denominator,
                )
                for negated, index in tops[q]
                if -negated <= seeds_raw[q]
            ]
            scans.sort(key=lambda scan: scan.dtw_raw)
            results.append(scans)
        return results

    def assign_buckets_stacked(
        self,
        queries: np.ndarray,
        length: int | None = None,
        stop_at_half_st: bool = True,
    ) -> "list[tuple[LengthBucket, list[_RepScan]]]":
        """The group-selection half of :meth:`best_match`, for a whole
        stack of equal-length queries at once.

        Returns, per query, the selected bucket plus its representative
        scans — exactly what :meth:`best_match` would feed
        :meth:`search_groups`. ``length`` pins every query to one
        bucket (``Match = Exact``); ``None`` runs the §5.3 length sweep
        with each query carrying its own best-so-far bound across
        lengths and (with ``stop_at_half_st``) leaving the sweep at the
        first representative within ``ST/2``, exactly like the
        per-query path — queries that are done simply drop out of the
        stacked scans of the remaining lengths. This method is the
        single owner of the sweep semantics for both the per-query and
        the batched executor; keep it in lockstep with
        :meth:`best_match` above.
        """
        queries = np.asarray(queries, dtype=np.float64)
        n_queries = queries.shape[0]
        stats = self.last_stats

        if length is not None:
            bucket = self.rspace.bucket(int(length))
            stats.lengths_visited += n_queries
            scans_per_query = self.scan_representatives_stacked(bucket, queries)
            for scans in scans_per_query:
                if not scans:
                    raise QueryError(
                        f"no representative of length {length} reachable; "
                        "widen the DTW window"
                    )
            return [(bucket, scans) for scans in scans_per_query]

        best: list[tuple | None] = [None] * n_queries  # (bucket, scans)
        active = list(range(n_queries))
        for candidate_length in self.rspace.search_length_order(
            queries.shape[1]
        ):
            if not active:
                break
            bucket = self.rspace.bucket(candidate_length)
            stats.lengths_visited += len(active)
            bounds = np.array(
                [
                    math.inf
                    if best[q] is None
                    else best[q][1][0].dtw_normalized
                    for q in active
                ]
            )
            scans_per_query = self.scan_representatives_stacked(
                bucket, queries[active], bounds
            )
            still_active = []
            for q, scans in zip(active, scans_per_query, strict=True):
                if scans and (
                    best[q] is None
                    or scans[0].dtw_normalized < best[q][1][0].dtw_normalized
                ):
                    best[q] = (bucket, scans)
                if (
                    stop_at_half_st
                    and scans
                    and scans[0].dtw_normalized <= self.st / 2.0
                ):
                    stats.stopped_at_half_st = True
                    continue
                still_active.append(q)
            active = still_active
        for q in range(n_queries):
            if best[q] is None:
                raise QueryError(
                    "no representative reachable; widen the DTW window"
                )
        return best  # type: ignore[return-value]

    def search_groups(
        self,
        bucket: LengthBucket,
        scans: list[_RepScan],
        query: np.ndarray,
        k: int,
    ) -> list[Match]:
        """Search every probed group and merge the k best matches."""
        merged: dict = {}
        for scan in scans[: self.n_probe]:
            for match in self._search_group(bucket, scan, query, k):
                existing = merged.get(match.ssid)
                if existing is None or match.dtw_normalized < existing.dtw_normalized:
                    merged[match.ssid] = match
        return sorted(merged.values())[:k]

    def _search_group(
        self, bucket: LengthBucket, scan: _RepScan, query: np.ndarray, k: int
    ) -> list[Match]:
        """Find the best member(s) inside the selected group (§5.2 step 3).

        Members are visited outward from the position where the stored
        (normalized) ED-to-representative equals the query→representative
        normalized DTW — the §5.3 in-group ordering — with each DTW call
        early-abandoned at the current k-th best. The representative
        distance is the one the scan already computed (``scan.dtw_raw``),
        not a fresh DTW.
        """
        group_index = scan.group_index
        group = bucket.groups[group_index]
        denominator = 2.0 * max(query.shape[0], bucket.length)
        target = scan.dtw_raw / denominator

        keys = group.normalized_ed_to_rep()
        start = bisect.bisect_left(keys.tolist(), target)
        order = list(_alternate_outward(start, len(keys)))
        if self.group_search_width is not None:
            order = order[: max(k, self.group_search_width)]

        heap: list[tuple[float, int]] = []  # max-heap via negated distance
        results: dict[int, Match] = {}
        stats = self.last_stats

        def admit(member_index: int, raw: float, values: np.ndarray) -> None:
            match = Match(
                ssid=group.member_ids[member_index],
                values=values,
                dtw=raw,
                dtw_normalized=raw / denominator,
                group=(bucket.length, group_index),
            )
            if len(heap) < k:
                heapq.heappush(heap, (-raw, member_index))
                results[member_index] = match
            elif raw < -heap[0][0]:
                _, evicted = heapq.heapreplace(heap, (-raw, member_index))
                del results[evicted]
                results[member_index] = match

        if self.use_batch_kernels:
            radius = resolve_window(query.shape[0], bucket.length, self.window)
            order_array = np.asarray(order, dtype=np.intp)
            if len(order) < group.count:
                # group_search_width truncated the visit list: gather
                # only the needed rows.
                if group.member_rows is not None and bucket.store_view is not None:
                    ordered_values = bucket.store_view.values(
                        group.member_rows[order_array]
                    )
                else:
                    ordered_values = np.stack(
                        [
                            self.dataset.subsequence(group.member_ids[index])
                            for index in order
                        ]
                    )
            else:
                members = bucket.member_matrix(group_index, self.dataset)
                ordered_values = members[order_array]
            # The LSI outward order puts likely-best members in the first
            # chunk, so later chunks run against a tight k-th-best bound.
            # For those chunks, admissible per-member lower bounds
            # (LB_Kim maxed with LB_Keogh against the query envelope when
            # lengths match) prune without touching the DP; computing
            # them is only worth it when a second chunk exists.
            member_bounds = None
            member_kim = None
            if self.use_lower_bounds and order_array.size > BATCH_CHUNK:
                tail = ordered_values[BATCH_CHUNK:]
                tail_kim = lb_kim_batch(query, tail)
                tail_bounds = tail_kim
                if query.shape[0] == bucket.length:
                    env_lower, env_upper = sliding_minmax(query, radius)
                    tail_bounds = np.maximum(
                        tail_kim, lb_keogh_batch(tail, env_lower, env_upper)
                    )
                head = np.zeros(BATCH_CHUNK)
                member_bounds = np.concatenate([head, tail_bounds])
                member_kim = np.concatenate([head, tail_kim])
            for start in range(0, order_array.size, BATCH_CHUNK):
                positions = np.arange(
                    start, min(start + BATCH_CHUNK, order_array.size)
                )
                stats.members_examined += positions.size
                abandon = -heap[0][0] if len(heap) == k else math.inf
                if member_bounds is not None and math.isfinite(abandon):
                    keep = member_bounds[positions] < abandon
                    stats.members_pruned_lb += int(positions.size - keep.sum())
                    _attribute_lb_prunes(
                        stats, member_kim[positions[~keep]], abandon, reverse=False
                    )
                    positions = positions[keep]
                    if not positions.size:
                        continue
                distances = dtw_batch(
                    query,
                    ordered_values[positions],
                    radius,
                    abandon_above=abandon if math.isfinite(abandon) else None,
                )
                for position, raw in zip(
                    positions.tolist(), distances.tolist(), strict=True
                ):
                    if raw == math.inf:
                        stats.members_abandoned += 1
                        stats.cascade_dtw_abandon += 1
                        continue
                    admit(
                        int(order_array[position]), raw, ordered_values[position]
                    )
            return sorted(results.values())

        for member_index in order:
            values = self.dataset.subsequence(group.member_ids[member_index])
            stats.members_examined += 1
            abandon = -heap[0][0] if len(heap) == k else math.inf
            raw = dtw(
                query,
                values,
                window=self.window,
                abandon_above=abandon if math.isfinite(abandon) else None,
            )
            if raw == math.inf:
                stats.members_abandoned += 1
                stats.cascade_dtw_abandon += 1
                continue
            admit(member_index, raw, values)
        return sorted(results.values())


def _alternate_outward(start: int, n: int) -> Iterator[int]:
    """Indices ``start, start-1, start+1, start-2, ...`` clipped to [0, n)."""
    if n <= 0:
        return
    start = min(max(start, 0), n - 1)
    yield start
    for offset in range(1, n):
        left = start - offset
        right = start + offset
        if left >= 0:
            yield left
        if right < n:
            yield right
