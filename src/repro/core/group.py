"""ONEX similarity groups (paper Definition 8).

A group collects same-length subsequences whose normalized ED to the
group's *representative* — the running point-wise average of its members
(Definition 7) — is at most ``ST/2``. Lemma 1 then guarantees every pair
of members is within ``ST`` of each other.

During construction the group is mutable (members stream in, the mean
updates incrementally); :meth:`SimilarityGroup.finalize` freezes it and
computes the Local Sequence Index payload: member→representative EDs
sorted ascending, plus the representative's LB_Keogh envelope.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.data.timeseries import SubsequenceId
from repro.distances.lower_bounds import Envelope, envelope
from repro.exceptions import IndexConstructionError


class SimilarityGroup:
    """One ONEX similarity group ``G^i_k`` of subsequences of length ``i``.

    Parameters
    ----------
    length:
        Common length ``i`` of every member.
    seed_id, seed_values:
        The first subsequence, which also becomes the initial
        representative (Algorithm 1, lines 7-10).
    """

    __slots__ = (
        "length",
        "_ids",
        "_sum",
        "_finalized",
        "member_ids",
        "member_rows",
        "ed_to_rep",
        "_representative",
        "_envelope",
        "envelope_radius",
    )

    def __init__(
        self, length: int, seed_id: SubsequenceId, seed_values: np.ndarray
    ) -> None:
        if seed_values.shape[0] != length:
            raise IndexConstructionError(
                f"seed subsequence has length {seed_values.shape[0]}, expected {length}"
            )
        self.length = int(length)
        self._ids: list[SubsequenceId] = [seed_id]
        self._sum = seed_values.astype(np.float64).copy()
        self._finalized = False
        # Populated by finalize():
        self.member_ids: tuple[SubsequenceId, ...] = ()
        self.member_rows: np.ndarray | None = None  # rows into a LengthView
        self.ed_to_rep: np.ndarray | None = None
        self._representative: np.ndarray | None = None
        self._envelope: Envelope | None = None
        self.envelope_radius: int | None = None

    # ------------------------------------------------------------------
    # Construction phase
    # ------------------------------------------------------------------
    def add(self, ssid: SubsequenceId, values: np.ndarray) -> None:
        """Add a member and update the running mean (Algorithm 1, line 17)."""
        if self._finalized:
            raise IndexConstructionError("cannot add members to a finalized group")
        self._ids.append(ssid)
        self._sum += values

    @property
    def count(self) -> int:
        """Number of member subsequences."""
        return len(self._ids)

    def __len__(self) -> int:
        return self.count

    @property
    def representative(self) -> np.ndarray:
        """Point-wise average of the members (paper Definition 7)."""
        if self._finalized:
            assert self._representative is not None
            return self._representative
        return self._sum / self.count

    @property
    def member_sum(self) -> np.ndarray:
        """The exact running point-wise member sum (``representative *
        count`` up to rounding; the shard result protocol ships this so
        restored representatives divide out bit-identically)."""
        return self._sum

    # ------------------------------------------------------------------
    # Finalization: freeze and build the LSI payload
    # ------------------------------------------------------------------
    def finalize(
        self,
        member_values: Sequence[np.ndarray] | np.ndarray,
        envelope_radius: int,
        member_rows: np.ndarray | None = None,
    ) -> None:
        """Freeze the group and index its members.

        Parameters
        ----------
        member_values:
            A stacked ``(count, length)`` member matrix (one row per
            member, in the order they were added). A sequence of 1-D
            arrays is accepted and stacked.
        envelope_radius:
            LB_Keogh band radius for the representative's envelope (§4.3:
            LSI stores "envelopes around each representative").
        member_rows:
            Optional row indices of the members in a columnar
            :class:`~repro.data.store.LengthView`, aligned with
            ``member_values``; stored in LSI (ED-sorted) order so buckets
            can gather member values with one fancy-index.
        """
        if self._finalized:
            raise IndexConstructionError("group is already finalized")
        matrix = np.asarray(member_values, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != self.count:
            raise IndexConstructionError(
                f"got member matrix of shape {matrix.shape} for "
                f"{self.count} members of length {self.length}"
            )
        representative = self._sum / self.count
        # All member->representative EDs in one vectorized norm.
        diff = matrix - representative
        distances = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        order = np.argsort(distances, kind="stable")
        self.member_ids = tuple(self._ids[i] for i in order)
        if member_rows is not None:
            self.member_rows = np.asarray(member_rows, dtype=np.int64)[order]
        self.ed_to_rep = distances[order]
        self._representative = representative
        self._representative.setflags(write=False)
        # The LB_Keogh envelope is built lazily on first access: the
        # batch query path reads bucket-level envelope stacks instead,
        # so eager per-group construction would tax every build for a
        # payload many groups never serve.
        self.envelope_radius = int(envelope_radius)
        self._finalized = True

    @property
    def is_finalized(self) -> bool:
        return self._finalized

    @classmethod
    def from_members(
        cls,
        length: int,
        member_ids: Sequence[SubsequenceId],
        member_sum: np.ndarray,
        member_matrix: np.ndarray,
        envelope_radius: int,
        member_rows: np.ndarray | None = None,
    ) -> "SimilarityGroup":
        """Build a finalized group directly from accumulated engine state.

        ``member_sum`` is the running point-wise sum the construction
        engine accumulated (the same quantity :meth:`add` maintains), so
        the representative is bit-identical to the streaming path.
        """
        if len(member_ids) == 0:
            raise IndexConstructionError("cannot build an empty group")
        group = cls.__new__(cls)
        group.length = int(length)
        group._ids = list(member_ids)
        group._sum = np.asarray(member_sum, dtype=np.float64)
        group._finalized = False
        group.member_ids = ()
        group.member_rows = None
        group.ed_to_rep = None
        group._representative = None
        group._envelope = None
        group.finalize(member_matrix, envelope_radius, member_rows=member_rows)
        return group

    @classmethod
    def restore(
        cls,
        length: int,
        member_ids: Sequence[SubsequenceId],
        ed_to_rep: np.ndarray,
        representative: np.ndarray,
        envelope_radius: int,
        member_rows: np.ndarray | None = None,
        member_sum: np.ndarray | None = None,
    ) -> "SimilarityGroup":
        """Rebuild a finalized group from persisted arrays.

        ``member_ids``/``ed_to_rep`` must already be in ascending-ED
        order (the order :meth:`finalize` produced before saving).
        ``member_sum``, when available (the shared-memory shard return
        ships it), restores the construction engine's exact running sum;
        otherwise it is reconstructed as ``representative * count``,
        which may differ from the original in the last ulp.
        """
        if len(member_ids) == 0:
            raise IndexConstructionError("cannot restore an empty group")
        if len(member_ids) != len(ed_to_rep):
            raise IndexConstructionError(
                f"{len(member_ids)} member ids but {len(ed_to_rep)} distances"
            )
        representative = np.asarray(representative, dtype=np.float64)
        group = cls.__new__(cls)
        group.length = int(length)
        group._ids = list(member_ids)
        group._sum = (
            representative * len(member_ids)
            if member_sum is None
            else np.asarray(member_sum, dtype=np.float64)
        )
        group.member_ids = tuple(member_ids)
        group.member_rows = (
            None if member_rows is None else np.asarray(member_rows, dtype=np.int64)
        )
        group.ed_to_rep = np.asarray(ed_to_rep, dtype=np.float64)
        rep_copy = representative.copy()
        rep_copy.setflags(write=False)
        group._representative = rep_copy
        group._envelope = None
        group.envelope_radius = int(envelope_radius)
        group._finalized = True
        return group

    @property
    def rep_envelope(self) -> Envelope:
        """The representative's LB_Keogh envelope (built lazily, cached)."""
        if not self._finalized:
            raise IndexConstructionError("group has not been finalized")
        if self._envelope is None:
            assert self._representative is not None and self.envelope_radius is not None
            self._envelope = envelope(self._representative, self.envelope_radius)
        return self._envelope

    # ------------------------------------------------------------------
    # Lookup helpers used by the query processor
    # ------------------------------------------------------------------
    def normalized_ed_to_rep(self) -> np.ndarray:
        """Member distances to the representative on the normalized scale."""
        if self.ed_to_rep is None:
            raise IndexConstructionError("group has not been finalized")
        return self.ed_to_rep / math.sqrt(self.length)

    def members_of_series(self, series: int) -> tuple[SubsequenceId, ...]:
        """Members drawn from one particular parent series."""
        source = self.member_ids if self._finalized else tuple(self._ids)
        return tuple(ssid for ssid in source if ssid.series == series)

    def __repr__(self) -> str:
        state = "finalized" if self._finalized else "building"
        return f"<SimilarityGroup L={self.length} members={self.count} ({state})>"
