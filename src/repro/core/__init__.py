"""The ONEX core: similarity groups, R-Space, indexes and query processing."""

from repro.core.group import SimilarityGroup
from repro.core.grouping import (
    GroupBuilder,
    RepresentativeSet,
    build_groups_for_length,
    reference_build_groups_for_length,
)
from repro.core.rspace import LengthBucket, RSpace
from repro.core.spspace import SPSpace, SimilarityDegree
from repro.core.results import (
    BaseStats,
    Match,
    SeasonalGroup,
    SeasonalResult,
    ThresholdRecommendation,
)
from repro.core.onex import OnexIndex

__all__ = [
    "SimilarityGroup",
    "GroupBuilder",
    "RepresentativeSet",
    "build_groups_for_length",
    "reference_build_groups_for_length",
    "LengthBucket",
    "RSpace",
    "SPSpace",
    "SimilarityDegree",
    "BaseStats",
    "Match",
    "SeasonalGroup",
    "SeasonalResult",
    "ThresholdRecommendation",
    "OnexIndex",
]
