"""Construction of similarity groups for one length — paper Algorithm 1.

The subsequences of a given length are visited in random order
(RANDOMIZE-IN-PLACE, i.e. a seeded Fisher-Yates shuffle, removing
data-order bias). Each subsequence is compared against every current
representative at once (a vectorized ED against the representative
matrix); if the closest representative lies within ``sqrt(L) * ST / 2``
the subsequence joins that group and the running mean updates, otherwise
the subsequence seeds a new group and becomes its representative.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.group import SimilarityGroup
from repro.data.dataset import Dataset
from repro.data.timeseries import SubsequenceId
from repro.exceptions import IndexConstructionError, ThresholdError


class _RepresentativeMatrix:
    """Growable matrix of current representatives, one row per group.

    Rows are kept in sync with the groups' running means so the
    vectorized nearest-representative search always sees fresh values.
    """

    def __init__(self, length: int, capacity: int = 16) -> None:
        self._matrix = np.empty((capacity, length))
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def view(self) -> np.ndarray:
        return self._matrix[: self._count]

    def append(self, representative: np.ndarray) -> None:
        if self._count == self._matrix.shape[0]:
            grown = np.empty((self._matrix.shape[0] * 2, self._matrix.shape[1]))
            grown[: self._count] = self._matrix[: self._count]
            self._matrix = grown
        self._matrix[self._count] = representative
        self._count += 1

    def update(self, index: int, representative: np.ndarray) -> None:
        self._matrix[index] = representative


def build_groups_for_length(
    dataset: Dataset,
    length: int,
    st: float,
    rng: np.random.Generator,
    start_step: int = 1,
    envelope_radius: int | None = None,
) -> list[SimilarityGroup]:
    """Run Algorithm 1 for one subsequence length.

    Parameters
    ----------
    dataset:
        The (already normalized) dataset to decompose.
    length:
        Subsequence length ``L``.
    st:
        Similarity threshold on the normalized-ED scale; the raw-ED group
        admission test is ``ED <= sqrt(L) * st / 2`` (Algorithm 1 line 15).
    rng:
        Source of the Fisher-Yates shuffle (lines 3).
    start_step:
        Stride over starting positions (1 = every subsequence, as in the
        paper; larger values trade fidelity for build speed).
    envelope_radius:
        LB_Keogh radius stored with each representative; defaults to 10%
        of the length.

    Returns
    -------
    list[SimilarityGroup]
        Finalized groups covering every enumerated subsequence exactly once.
    """
    if st <= 0 or not math.isfinite(st):
        raise ThresholdError(st)
    if envelope_radius is None:
        envelope_radius = max(1, length // 10)

    entries = list(dataset.subsequences(length, start_step=start_step))
    if not entries:
        raise IndexConstructionError(
            f"dataset {dataset.name!r} has no subsequences of length {length}"
        )
    # RANDOMIZE-IN-PLACE: visit entries in a seeded Fisher-Yates order.
    entries = [entries[i] for i in rng.permutation(len(entries))]

    threshold = math.sqrt(length) * st / 2.0
    groups: list[SimilarityGroup] = []
    reps = _RepresentativeMatrix(length)
    membership: list[list[int]] = []  # per group: indices into `entries`

    for entry_index, (ssid, values) in enumerate(entries):
        if reps.count == 0:
            groups.append(SimilarityGroup(length, ssid, values))
            reps.append(values)
            membership.append([entry_index])
            continue
        diff = reps.view() - values
        distances = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        nearest = int(np.argmin(distances))
        if distances[nearest] <= threshold:
            groups[nearest].add(ssid, values)
            membership[nearest].append(entry_index)
            reps.update(nearest, groups[nearest].representative)
        else:
            groups.append(SimilarityGroup(length, ssid, values))
            reps.append(values)
            membership.append([entry_index])

    for group, member_rows in zip(groups, membership):
        group.finalize(
            [entries[row][1] for row in member_rows], envelope_radius=envelope_radius
        )
    return groups


def regroup_members(
    members: list[tuple[SubsequenceId, np.ndarray]],
    length: int,
    st: float,
    rng: np.random.Generator,
    envelope_radius: int | None = None,
) -> list[SimilarityGroup]:
    """Re-cluster an explicit member list with a (smaller) threshold.

    Used by Algorithm 2.C's *split* case (``ST' < ST``): each existing
    group's members are re-grouped with the same methodology as the
    original construction (§5.2 case 2).
    """
    if not members:
        raise IndexConstructionError("cannot regroup an empty member list")
    if envelope_radius is None:
        envelope_radius = max(1, length // 10)
    shuffled = [members[i] for i in rng.permutation(len(members))]
    threshold = math.sqrt(length) * st / 2.0

    groups: list[SimilarityGroup] = []
    reps = _RepresentativeMatrix(length)
    values_per_group: list[list[np.ndarray]] = []
    for ssid, values in shuffled:
        if reps.count == 0:
            groups.append(SimilarityGroup(length, ssid, values))
            reps.append(values)
            values_per_group.append([values])
            continue
        diff = reps.view() - values
        distances = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        nearest = int(np.argmin(distances))
        if distances[nearest] <= threshold:
            groups[nearest].add(ssid, values)
            values_per_group[nearest].append(values)
            reps.update(nearest, groups[nearest].representative)
        else:
            groups.append(SimilarityGroup(length, ssid, values))
            reps.append(values)
            values_per_group.append([values])
    for group, values_list in zip(groups, values_per_group):
        group.finalize(values_list, envelope_radius=envelope_radius)
    return groups
