"""Construction of similarity groups for one length — paper Algorithm 1.

The subsequences of a given length are visited in random order
(RANDOMIZE-IN-PLACE, i.e. a seeded Fisher-Yates shuffle, removing
data-order bias). Each subsequence joins the nearest current
representative if that lies within ``sqrt(L) * ST / 2``, updating the
group's running mean; otherwise it seeds a new group.

Two implementations coexist:

* :func:`reference_build_groups_for_length` — the original
  entry-at-a-time loop over ``(SubsequenceId, ndarray)`` tuples. It is
  the executable specification the property tests and
  ``benchmarks/bench_build_engine.py`` compare against.
* :class:`GroupBuilder` — the vectorized construction engine over a
  columnar :class:`~repro.data.store.LengthView`. Its ``sequential``
  mode makes **bit-identical decisions** to the reference: the
  norm-difference lower bound ``| ||r|| - ||s|| | <= ED(r, s)`` (computed
  from cached squared norms) only *skips* representatives that provably
  cannot win the admission test, and the surviving candidates are
  measured with the exact same difference-norm formula, so the admitted
  group and the running-sum updates match the reference to the bit. The
  opt-in ``minibatch`` mode assigns whole chunks against a snapshot of
  the representative matrix in one BLAS call, with a sequential fallback
  only for rows whose nearest snapshot representative is out of
  threshold — a documented deviation from Algorithm 1's strict
  per-subsequence ordering that preserves the Lemma 1/2 slack
  guarantees (members are admitted within threshold of *some* recent
  representative state, exactly like the reference's running-mean
  drift).

Sequential mode additionally dispatches through the kernel backend
registry (:mod:`repro.distances.backend`, ISSUE 7): when the active
backend ships a fused ``build_assign`` kernel (the numba backend's
nopython Algorithm-1 pass), the whole per-length assignment loop runs
inside it — same shortlist, same exact recheck, same first-index
argmin, same running-sum admits — and the engine reconstructs the
membership lists from the kernel's assignment array. The final group
payloads (representatives, sorted EDs, member order) are computed by
the *shared* numpy finalization either way, so kernel and engine
produce bit-identical groups whenever their admission decisions agree;
the decisions themselves differ only if an exact distance lands within
one rounding ulp of the threshold or of a competing candidate (the
kernel accumulates the difference norm sequentially where numpy's
``einsum`` uses SIMD partial sums), a boundary the property suite
probes with adversarial duplicate/constant/extreme inputs.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.group import SimilarityGroup
from repro.data.dataset import Dataset
from repro.distances.backend import get_backend
from repro.data.store import LengthView, SubsequenceStore
from repro.data.timeseries import SubsequenceId
from repro.exceptions import IndexConstructionError, ThresholdError

#: Rows assigned per BLAS call in ``assign_mode="minibatch"``.
DEFAULT_CHUNK_SIZE = 1024

#: Absolute slack added to the norm-difference lower bound before a
#: representative is skipped. The bound is mathematically ``<= ED``; the
#: slack only guards against floating-point rounding in the cached
#: norms, so pruning can never change a sequential-mode decision.
_LB_SLACK = 1e-9

ASSIGN_MODES = ("sequential", "minibatch")


class RepresentativeSet:
    """Growable representative state shared by every construction path.

    Maintains, per group: the running point-wise **sum** of members (the
    exact quantity :meth:`SimilarityGroup.add` accumulates), the member
    count, the representative row ``sum / count``, and its cached ED
    norm backing the norm-difference lower bound.
    """

    def __init__(self, length: int, capacity: int = 16) -> None:
        self.length = int(length)
        self._sums = np.empty((capacity, length))
        self._matrix = np.empty((capacity, length))
        self._counts = np.zeros(capacity, dtype=np.int64)
        self._norms = np.empty(capacity)
        self._sq_norms = np.empty(capacity)
        self._count = 0

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    def view(self) -> np.ndarray:
        """Current ``(n_groups, length)`` representative matrix."""
        return self._matrix[: self._count]

    def norms(self) -> np.ndarray:
        return self._norms[: self._count]

    def sums(self) -> np.ndarray:
        return self._sums[: self._count]

    def counts(self) -> np.ndarray:
        return self._counts[: self._count]

    def member_sum(self, index: int) -> np.ndarray:
        return self._sums[index]

    # ------------------------------------------------------------------
    @classmethod
    def from_groups(
        cls, length: int, representatives: np.ndarray, counts: np.ndarray
    ) -> "RepresentativeSet":
        """Seed the set from existing groups (incremental maintenance).

        ``representatives`` is the ``(n_groups, length)`` matrix of
        current representatives and ``counts`` the member counts; sums
        are reconstructed as ``representative * count``.
        """
        n_groups = representatives.shape[0]
        reps = cls(length, capacity=max(16, 2 * n_groups))
        counts = np.asarray(counts, dtype=np.int64)
        reps._counts[:n_groups] = counts
        reps._sums[:n_groups] = representatives * counts[:, None]
        reps._matrix[:n_groups] = representatives
        sq = np.einsum("ij,ij->i", representatives, representatives)
        reps._sq_norms[:n_groups] = sq
        reps._norms[:n_groups] = np.sqrt(sq)
        reps._count = n_groups
        return reps

    def _grow(self) -> None:
        capacity = self._matrix.shape[0] * 2
        for name in ("_sums", "_matrix"):
            grown = np.empty((capacity, self.length))
            grown[: self._count] = getattr(self, name)[: self._count]
            setattr(self, name, grown)
        counts = np.zeros(capacity, dtype=np.int64)
        counts[: self._count] = self._counts[: self._count]
        self._counts = counts
        for name in ("_norms", "_sq_norms"):
            grown_flat = np.empty(capacity)
            grown_flat[: self._count] = getattr(self, name)[: self._count]
            setattr(self, name, grown_flat)

    def new_group(self, values: np.ndarray) -> int:
        """Seed a new group with ``values`` as first member; returns its index."""
        if self._count == self._matrix.shape[0]:
            self._grow()
        g = self._count
        self._sums[g] = values
        self._matrix[g] = values
        sq = float(np.dot(self._matrix[g], self._matrix[g]))
        self._counts[g] = 1
        self._sq_norms[g] = sq
        self._norms[g] = math.sqrt(sq)
        self._count += 1
        return g

    def admit(self, index: int, values: np.ndarray) -> None:
        """Add a member to group ``index`` and refresh its representative."""
        self._sums[index] += values
        self._counts[index] += 1
        self._refresh(index)

    def admit_chunk(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Accumulate a whole chunk of members without refreshing.

        ``indices`` may repeat; accumulation is unbuffered. Call
        :meth:`refresh_rows` on the touched rows afterwards.
        """
        np.add.at(self._sums, indices, values)
        self._counts[: self._count] += np.bincount(
            indices, minlength=self._count
        )[: self._count]

    def _refresh(self, index: int) -> None:
        self._matrix[index] = self._sums[index] / self._counts[index]
        sq = float(np.dot(self._matrix[index], self._matrix[index]))
        self._sq_norms[index] = sq
        self._norms[index] = math.sqrt(sq)

    def refresh_rows(self, indices: np.ndarray) -> None:
        """Recompute representatives/norms after deferred admissions."""
        if indices.size == 0:
            return
        rows = self._sums[indices] / self._counts[indices, None]
        self._matrix[indices] = rows
        sq = np.einsum("ij,ij->i", rows, rows)
        self._sq_norms[indices] = sq
        self._norms[indices] = np.sqrt(sq)

    # ------------------------------------------------------------------
    def nearest_sequential(
        self, values: np.ndarray, value_sq_norm: float, threshold: float
    ) -> tuple[int, float]:
        """Exact nearest representative within ``threshold``.

        Returns ``(group_index, distance)``, or ``(-1, inf)`` when no
        representative lies within the threshold. The decisions are
        exactly those of the reference's full scan:

        1. one BLAS matvec gives approximate squared distances
           ``||r||^2 - 2 r.s + ||s||^2`` from the cached norms — no
           ``(n_groups, length)`` temporary like the reference's
           difference matrix;
        2. representatives outside ``threshold^2`` plus a floating-point
           slack are dropped (they cannot pass the admission test, let
           alone be its argmin), and the norm-difference lower bound
           ``| ||r|| - ||s|| | <= ED(r, s)`` cheaply re-prunes the
           slack's survivors;
        3. the shortlist is measured with the reference's exact
           difference-norm formula, so the admitted group (first-index
           argmin tie-break included) matches bit for bit.
        """
        if self._count == 0:
            return -1, math.inf
        cross = self.view() @ values
        approx_sq = self._sq_norms[: self._count] - 2.0 * cross + value_sq_norm
        slack = _LB_SLACK * (1.0 + value_sq_norm)
        candidates = np.flatnonzero(approx_sq <= threshold * threshold + slack)
        if candidates.size == 0:
            return -1, math.inf
        value_norm = math.sqrt(value_sq_norm)
        lower_bounds = np.abs(self._norms[candidates] - value_norm)
        candidates = candidates[lower_bounds <= threshold + _LB_SLACK]
        if candidates.size == 0:
            return -1, math.inf
        diff = self._matrix[candidates] - values
        distances = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        best = int(np.argmin(distances))
        if distances[best] > threshold:
            return -1, math.inf
        return int(candidates[best]), float(distances[best])

    def nearest_chunk(
        self, chunk: np.ndarray, chunk_sq_norms: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest representative per chunk row, via one BLAS call.

        Runs the shared chunked assigner against the current
        representative matrix snapshot, reusing the cached norms.
        """
        return assign_to_nearest(
            chunk,
            self.view(),
            point_sq_norms=chunk_sq_norms,
            centroid_sq_norms=self._sq_norms[: self._count],
        )


def assign_to_nearest(
    points: np.ndarray,
    centroids: np.ndarray,
    point_sq_norms: np.ndarray | None = None,
    centroid_sq_norms: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest centroid per point, in one BLAS call.

    The chunked assigner shared by the minibatch construction mode,
    radius-constrained k-means and incremental maintenance:
    ``ED^2 = ||p||^2 + ||c||^2 - 2 p.c`` with the cross term as a single
    gemm. Returns ``(nearest_index, distance)`` arrays.
    """
    if point_sq_norms is None:
        point_sq_norms = np.einsum("ij,ij->i", points, points)
    if centroid_sq_norms is None:
        centroid_sq = np.einsum("ij,ij->i", centroids, centroids)
    else:
        centroid_sq = centroid_sq_norms
    squared = (
        point_sq_norms[:, None] + centroid_sq[None, :] - 2.0 * points @ centroids.T
    )
    np.clip(squared, 0.0, None, out=squared)
    nearest = np.argmin(squared, axis=1)
    distances = np.sqrt(squared[np.arange(points.shape[0]), nearest])
    return nearest, distances


def _check_threshold(st: float) -> None:
    if st <= 0 or not math.isfinite(st):
        raise ThresholdError(st)


class GroupBuilder:
    """Vectorized Algorithm 1 over a columnar subsequence store.

    Parameters
    ----------
    length:
        Subsequence length ``L``.
    st:
        Similarity threshold on the normalized-ED scale; the raw-ED
        admission test is ``ED <= sqrt(L) * st / 2`` (Algorithm 1,
        line 15).
    assign_mode:
        ``"sequential"`` (bit-identical to the reference) or
        ``"minibatch"`` (chunked BLAS assignment, documented deviation).
    envelope_radius:
        LB_Keogh radius stored with each representative; defaults to
        10% of the length.
    chunk_size:
        Rows per BLAS call in minibatch mode.
    """

    def __init__(
        self,
        length: int,
        st: float,
        *,
        assign_mode: str = "sequential",
        envelope_radius: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        _check_threshold(st)
        if assign_mode not in ASSIGN_MODES:
            raise IndexConstructionError(
                f"unknown assign_mode {assign_mode!r}; use one of {ASSIGN_MODES}"
            )
        if chunk_size < 1:
            raise IndexConstructionError(f"chunk_size must be >= 1, got {chunk_size}")
        self.length = int(length)
        self.st = float(st)
        self.threshold = math.sqrt(length) * st / 2.0
        self.assign_mode = assign_mode
        self.envelope_radius = (
            max(1, length // 10) if envelope_radius is None else int(envelope_radius)
        )
        self.chunk_size = int(chunk_size)
        #: Which implementation ran the last assignment pass: the name
        #: of the kernel backend when its fused ``build_assign`` kernel
        #: was dispatched, ``"numpy"`` for the vectorized engine paths.
        self.last_assign_backend: str = "numpy"
        #: Wall-clock split of the last :meth:`build` call, for the
        #: per-length throughput surfaced by ``onex info``.
        self.last_assign_seconds: float = 0.0
        self.last_finalize_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Store-backed construction
    # ------------------------------------------------------------------
    def build(
        self,
        view: LengthView,
        rng: np.random.Generator | None = None,
        *,
        order: np.ndarray | None = None,
    ) -> list[SimilarityGroup]:
        """Group every row of ``view``; returns finalized groups.

        The visit order is either drawn here from ``rng``
        (RANDOMIZE-IN-PLACE: a seeded Fisher-Yates permutation) or
        supplied explicitly via ``order`` — the process-parallel build
        pre-draws every length's permutation in grid order in the parent
        so worker shards make bit-identical decisions to the sequential
        build regardless of job count.
        """
        if view.length != self.length:
            raise IndexConstructionError(
                f"view of length {view.length} passed to builder of length "
                f"{self.length}"
            )
        if view.n_rows == 0:
            raise IndexConstructionError(
                f"store has no subsequences of length {self.length}"
            )
        if order is None:
            if rng is None:
                raise IndexConstructionError(
                    "GroupBuilder.build needs either an rng or an explicit order"
                )
            order = rng.permutation(view.n_rows)
        else:
            order = np.asarray(order, dtype=np.int64)
            if order.shape != (view.n_rows,):
                raise IndexConstructionError(
                    f"visit order has shape {order.shape}; expected "
                    f"({view.n_rows},) for length {self.length}"
                )
        started = time.perf_counter()
        self.last_assign_backend = "numpy"
        if self.assign_mode == "minibatch":
            reps = RepresentativeSet(self.length)
            membership = self._assign_minibatch(view, order, reps)
            sums = reps.sums()
        else:
            backend = get_backend()
            if backend.build_assign is not None:
                membership, sums = self._assign_kernel(
                    view, order, backend.build_assign
                )
                self.last_assign_backend = backend.name
            else:
                reps = RepresentativeSet(self.length)
                membership = self._assign_sequential(view, order, reps)
                sums = reps.sums()
        self.last_assign_seconds = time.perf_counter() - started
        started = time.perf_counter()
        groups = self._finalize(view, sums, membership)
        self.last_finalize_seconds = time.perf_counter() - started
        return groups

    def _assign_sequential(
        self, view: LengthView, order: np.ndarray, reps: RepresentativeSet
    ) -> list[list[int]]:
        threshold = self.threshold
        sq_norms = view.sq_norms()
        windows = view
        membership: list[list[int]] = []
        for row in order.tolist():
            values = windows.row_values(row)  # zero-copy view
            nearest, _ = reps.nearest_sequential(
                values, float(sq_norms[row]), threshold
            )
            if nearest < 0:
                reps.new_group(values)
                membership.append([row])
            else:
                reps.admit(nearest, values)
                membership[nearest].append(row)
        return membership

    def _assign_kernel(
        self, view: LengthView, order: np.ndarray, kernel
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """One fused backend call for the whole assignment pass.

        The kernel returns per-visit group assignments plus each group's
        running member sum and count; membership lists are reconstructed
        here in visit order (a stable argsort over the assignment array,
        matching the append order of the Python paths), and the sums
        feed the shared numpy finalization unchanged.
        """
        assign, sums, counts = kernel(
            view.flat_windows,
            view.window_rows,
            view.sq_norms(),
            order,
            self.threshold,
        )
        n_groups = sums.shape[0]
        positions = np.argsort(assign, kind="stable")
        boundaries = np.searchsorted(
            assign[positions], np.arange(n_groups + 1)
        )
        rows_by_group = order[positions]
        membership = [
            rows_by_group[boundaries[g] : boundaries[g + 1]]
            for g in range(n_groups)
        ]
        return membership, sums

    def _assign_minibatch(
        self, view: LengthView, order: np.ndarray, reps: RepresentativeSet
    ) -> list[list[int]]:
        threshold = self.threshold
        membership: list[list[int]] = []
        for start in range(0, order.size, self.chunk_size):
            rows = order[start : start + self.chunk_size]
            chunk = view.values(rows)
            chunk_sq = view.sq_norms(rows)
            if reps.count:
                nearest, distances = reps.nearest_chunk(chunk, chunk_sq)
                within = distances <= threshold
            else:
                within = np.zeros(rows.size, dtype=bool)
                nearest = np.zeros(rows.size, dtype=np.int64)
            # Whole-chunk admissions against the snapshot representatives.
            hit = np.flatnonzero(within)
            if hit.size:
                targets = nearest[hit]
                reps.admit_chunk(targets, chunk[hit])
                for i, group in zip(hit.tolist(), targets.tolist(), strict=True):
                    membership[group].append(int(rows[i]))
                reps.refresh_rows(np.unique(targets))
            # Sequential fallback for out-of-threshold rows (may seed
            # new groups other fallback rows immediately see).
            for i in np.flatnonzero(~within).tolist():
                row = int(rows[i])
                values = chunk[i]
                group, _ = reps.nearest_sequential(
                    values, float(chunk_sq[i]), threshold
                )
                if group < 0:
                    reps.new_group(values)
                    membership.append([row])
                else:
                    reps.admit(group, values)
                    membership[group].append(row)
        return membership

    def _finalize(
        self,
        view: LengthView,
        sums: np.ndarray,
        membership: list[list[int]] | list[np.ndarray],
    ) -> list[SimilarityGroup]:
        # Shared by every assignment path (engine and kernel alike):
        # given each group's exact member sum and row list, the final
        # payloads come out bit-identical regardless of who assigned.
        groups: list[SimilarityGroup] = []
        for g, member_rows in enumerate(membership):
            rows = np.asarray(member_rows, dtype=np.int64)
            groups.append(
                SimilarityGroup.from_members(
                    self.length,
                    view.ids(rows),
                    sums[g],
                    view.values(rows),
                    self.envelope_radius,
                    member_rows=rows,
                )
            )
        return groups

    # ------------------------------------------------------------------
    # Explicit-member construction (threshold splits, Algorithm 2.C)
    # ------------------------------------------------------------------
    def build_from_members(
        self,
        members: list[tuple[SubsequenceId, np.ndarray]],
        rng: np.random.Generator,
        member_rows: np.ndarray | None = None,
    ) -> list[SimilarityGroup]:
        """Group an explicit ``(id, values)`` list with the same engine.

        ``member_rows`` optionally carries the members' store rows so the
        produced groups stay store-backed.
        """
        if not members:
            raise IndexConstructionError("cannot group an empty member list")
        matrix = np.stack([values for _, values in members]).astype(np.float64)
        sq_norms = np.einsum("ij,ij->i", matrix, matrix)
        order = rng.permutation(len(members))
        reps = RepresentativeSet(self.length)
        membership: list[list[int]] = []
        threshold = self.threshold
        for position in order.tolist():
            values = matrix[position]
            nearest, _ = reps.nearest_sequential(
                values, float(sq_norms[position]), threshold
            )
            if nearest < 0:
                reps.new_group(values)
                membership.append([position])
            else:
                reps.admit(nearest, values)
                membership[nearest].append(position)
        groups: list[SimilarityGroup] = []
        for g, positions in enumerate(membership):
            index_array = np.asarray(positions, dtype=np.int64)
            rows = None if member_rows is None else member_rows[index_array]
            groups.append(
                SimilarityGroup.from_members(
                    self.length,
                    [members[i][0] for i in positions],
                    reps.member_sum(g),
                    matrix[index_array],
                    self.envelope_radius,
                    member_rows=rows,
                )
            )
        return groups


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def build_groups_for_length(
    dataset: Dataset,
    length: int,
    st: float,
    rng: np.random.Generator,
    start_step: int = 1,
    envelope_radius: int | None = None,
    assign_mode: str = "sequential",
) -> list[SimilarityGroup]:
    """Run Algorithm 1 for one subsequence length via the engine.

    Builds a throwaway columnar store over ``dataset``; callers indexing
    several lengths should construct one
    :class:`~repro.data.store.SubsequenceStore` and drive
    :class:`GroupBuilder` directly (as :meth:`OnexIndex.build` does).
    """
    _check_threshold(st)
    store = SubsequenceStore(dataset, start_step=start_step)
    view = store.view(length)
    if view.n_rows == 0:
        raise IndexConstructionError(
            f"dataset {dataset.name!r} has no subsequences of length {length}"
        )
    builder = GroupBuilder(
        length, st, assign_mode=assign_mode, envelope_radius=envelope_radius
    )
    return builder.build(view, rng)


def regroup_members(
    members: list[tuple[SubsequenceId, np.ndarray]],
    length: int,
    st: float,
    rng: np.random.Generator,
    envelope_radius: int | None = None,
    member_rows: np.ndarray | None = None,
) -> list[SimilarityGroup]:
    """Re-cluster an explicit member list with a (smaller) threshold.

    Used by Algorithm 2.C's *split* case (``ST' < ST``): each existing
    group's members are re-grouped with the same methodology as the
    original construction (§5.2 case 2).
    """
    if not members:
        raise IndexConstructionError("cannot regroup an empty member list")
    builder = GroupBuilder(length, st, envelope_radius=envelope_radius)
    return builder.build_from_members(members, rng, member_rows=member_rows)


# ----------------------------------------------------------------------
# Reference implementation (executable specification)
# ----------------------------------------------------------------------
class _ReferenceRepMatrix:
    """The seed implementation's growable representative matrix."""

    def __init__(self, length: int, capacity: int = 16) -> None:
        self._matrix = np.empty((capacity, length))
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def view(self) -> np.ndarray:
        return self._matrix[: self._count]

    def append(self, representative: np.ndarray) -> None:
        if self._count == self._matrix.shape[0]:
            grown = np.empty((self._matrix.shape[0] * 2, self._matrix.shape[1]))
            grown[: self._count] = self._matrix[: self._count]
            self._matrix = grown
        self._matrix[self._count] = representative
        self._count += 1

    def update(self, index: int, representative: np.ndarray) -> None:
        self._matrix[index] = representative


def reference_build_groups_for_length(
    dataset: Dataset,
    length: int,
    st: float,
    rng: np.random.Generator,
    start_step: int = 1,
    envelope_radius: int | None = None,
) -> list[SimilarityGroup]:
    """The original entry-at-a-time Algorithm 1 loop, kept verbatim.

    Every subsequence is materialized as a ``(SubsequenceId, ndarray)``
    tuple and compared against the full unpruned representative matrix
    each step. The engine's sequential mode is property-tested
    bit-identical to this function, and
    ``benchmarks/bench_build_engine.py`` uses it as the speedup
    baseline.
    """
    _check_threshold(st)
    if envelope_radius is None:
        envelope_radius = max(1, length // 10)

    entries = list(dataset.subsequences(length, start_step=start_step))
    if not entries:
        raise IndexConstructionError(
            f"dataset {dataset.name!r} has no subsequences of length {length}"
        )
    entries = [entries[i] for i in rng.permutation(len(entries))]

    threshold = math.sqrt(length) * st / 2.0
    groups: list[SimilarityGroup] = []
    reps = _ReferenceRepMatrix(length)
    membership: list[list[int]] = []  # per group: indices into `entries`

    for entry_index, (ssid, values) in enumerate(entries):
        if reps.count == 0:
            groups.append(SimilarityGroup(length, ssid, values))
            reps.append(values)
            membership.append([entry_index])
            continue
        diff = reps.view() - values
        distances = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        nearest = int(np.argmin(distances))
        if distances[nearest] <= threshold:
            groups[nearest].add(ssid, values)
            membership[nearest].append(entry_index)
            reps.update(nearest, groups[nearest].representative)
        else:
            groups.append(SimilarityGroup(length, ssid, values))
            reps.append(values)
            membership.append([entry_index])

    for group, member_rows in zip(groups, membership, strict=True):
        group.finalize(
            np.stack([entries[row][1] for row in member_rows]),
            envelope_radius=envelope_radius,
        )
    return groups
