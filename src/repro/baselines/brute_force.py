"""Standard DTW: the exact brute-force baseline of §6.1.

Computes DTW between the query and *every* enumerated subsequence and
returns the minimum — the paper's accuracy oracle ("the brute-force
always retrieves the best match possible and is used as accurate").
Early abandoning at the best-so-far keeps it from being gratuitously
slow, but it remains exact: abandoning only skips candidates already
proven worse.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.baselines.base import SearchMethod, SearchResult
from repro.data.dataset import Dataset
from repro.data.timeseries import SubsequenceId
from repro.distances.dtw import dtw
from repro.exceptions import QueryError
from repro.utils.validation import as_float_array


class StandardDTW(SearchMethod):
    """Exact exhaustive DTW search over all subsequences."""

    name = "StandardDTW"

    def __init__(self, window: int | float | None = 0.1) -> None:
        super().__init__(window=window)
        self._candidates: dict[int, list[tuple[SubsequenceId, np.ndarray]]] = {}

    def prepare(
        self, dataset: Dataset, lengths: Sequence[int], start_step: int = 1
    ) -> None:
        super().prepare(dataset, lengths, start_step)
        self._candidates = {
            length: list(dataset.subsequences(length, start_step=start_step))
            for length in self._lengths
        }

    def best_match(
        self, query: np.ndarray, length: int | None = None
    ) -> SearchResult:
        query = as_float_array(query, "query")
        best: SearchResult | None = None
        best_norm = math.inf
        for candidate_length in self._candidate_lengths(length):
            denominator = 2.0 * max(query.shape[0], candidate_length)
            raw_bound = best_norm * denominator
            for ssid, values in self._candidates[candidate_length]:
                distance = dtw(
                    query,
                    values,
                    window=self.window,
                    abandon_above=raw_bound if math.isfinite(raw_bound) else None,
                )
                if distance == math.inf:
                    continue
                normalized = distance / denominator
                if normalized < best_norm:
                    best_norm = normalized
                    raw_bound = best_norm * denominator
                    best = SearchResult(
                        ssid=ssid,
                        values=values,
                        dtw=distance,
                        dtw_normalized=normalized,
                    )
        if best is None:
            raise QueryError("StandardDTW found no candidate; widen the DTW window")
        return best
