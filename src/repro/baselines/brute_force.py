"""Standard DTW: the exact brute-force baseline of §6.1.

Computes DTW between the query and *every* enumerated subsequence and
returns the minimum — the paper's accuracy oracle ("the brute-force
always retrieves the best match possible and is used as accurate").
Early abandoning at the best-so-far keeps it from being gratuitously
slow, but it remains exact: abandoning only skips candidates already
proven worse.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.baselines.base import SearchMethod, SearchResult
from repro.data.dataset import Dataset
from repro.data.timeseries import SubsequenceId
from repro.distances.batch import chunk_sizes, dtw_batch
from repro.distances.dtw import dtw, resolve_window
from repro.exceptions import QueryError
from repro.utils.validation import as_float_array


class StandardDTW(SearchMethod):
    """Exact exhaustive DTW search over all subsequences.

    With ``use_batch_kernels`` (default) the per-length candidate stacks
    go through the vectorized :func:`repro.distances.batch.dtw_batch`
    in chunks, the shared early-abandon bound tightening between chunks;
    the result is identical to the scalar sweep.
    """

    name = "StandardDTW"

    def __init__(
        self, window: int | float | None = 0.1, use_batch_kernels: bool = True
    ) -> None:
        super().__init__(window=window)
        self.use_batch_kernels = use_batch_kernels
        self._candidates: dict[int, list[tuple[SubsequenceId, np.ndarray]]] = {}
        self._stacks: dict[int, np.ndarray] = {}

    def prepare(
        self, dataset: Dataset, lengths: Sequence[int], start_step: int = 1
    ) -> None:
        super().prepare(dataset, lengths, start_step)
        self._candidates = {
            length: list(dataset.subsequences(length, start_step=start_step))
            for length in self._lengths
        }
        # The stacked copies only serve the batch path; the scalar
        # reference sweep reads the per-candidate arrays directly.
        self._stacks = (
            {
                length: np.stack([values for _, values in entries])
                for length, entries in self._candidates.items()
                if entries
            }
            if self.use_batch_kernels
            else {}
        )

    def _best_of_length_batch(
        self, query: np.ndarray, candidate_length: int, raw_bound: float
    ) -> tuple[int, float]:
        """Index and distance of the best candidate under ``raw_bound``."""
        stack = self._stacks.get(candidate_length)
        if stack is None:
            return -1, math.inf
        radius = resolve_window(query.shape[0], candidate_length, self.window)
        best_index, best_raw = -1, math.inf
        start = 0
        # A small opening chunk establishes the abandon bound before the
        # full-size chunks sweep against it.
        for size in chunk_sizes(stack.shape[0]):
            bound = min(raw_bound, best_raw)
            distances = dtw_batch(
                query,
                stack[start : start + size],
                radius,
                abandon_above=bound if math.isfinite(bound) else None,
            )
            offset = int(np.argmin(distances))
            if distances[offset] < best_raw:
                best_raw = float(distances[offset])
                best_index = start + offset
            start += size
        return best_index, best_raw

    def best_match(
        self, query: np.ndarray, length: int | None = None
    ) -> SearchResult:
        query = as_float_array(query, "query")
        best: SearchResult | None = None
        best_norm = math.inf
        for candidate_length in self._candidate_lengths(length):
            denominator = 2.0 * max(query.shape[0], candidate_length)
            raw_bound = best_norm * denominator
            if self.use_batch_kernels:
                index, distance = self._best_of_length_batch(
                    query, candidate_length, raw_bound
                )
                if index >= 0 and distance / denominator < best_norm:
                    ssid, values = self._candidates[candidate_length][index]
                    best_norm = distance / denominator
                    best = SearchResult(
                        ssid=ssid,
                        values=values,
                        dtw=distance,
                        dtw_normalized=best_norm,
                    )
                continue
            for ssid, values in self._candidates[candidate_length]:
                distance = dtw(
                    query,
                    values,
                    window=self.window,
                    abandon_above=raw_bound if math.isfinite(raw_bound) else None,
                )
                if distance == math.inf:
                    continue
                normalized = distance / denominator
                if normalized < best_norm:
                    best_norm = normalized
                    raw_bound = best_norm * denominator
                    best = SearchResult(
                        ssid=ssid,
                        values=values,
                        dtw=distance,
                        dtw_normalized=normalized,
                    )
        if best is None:
            raise QueryError("StandardDTW found no candidate; widen the DTW window")
        return best
