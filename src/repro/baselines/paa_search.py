"""The PAA baseline: Keogh & Pazzani's *Scaling up DTW* (PDTW) [19].

Every subsequence is reduced once, offline, to its Piecewise Aggregate
Approximation; online, the query is reduced the same way and DTW runs on
the reduced representations — an ``(n/M)^2`` cheaper computation. The
candidate with the smallest reduced-space DTW is returned. The answer is
approximate: dimensionality reduction can reorder near-ties, which is
exactly the accuracy gap Table 3 of the paper measures.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.baselines.base import SearchMethod, SearchResult
from repro.data.dataset import Dataset
from repro.data.timeseries import SubsequenceId
from repro.distances.dtw import dtw
from repro.distances.paa import paa_transform
from repro.exceptions import QueryError
from repro.utils.validation import as_float_array


class PAASearch(SearchMethod):
    """Approximate search via DTW on PAA-reduced subsequences.

    Parameters
    ----------
    segment_size:
        Reduction factor ``c``: a length-``n`` sequence becomes
        ``max(1, n // c)`` segment means (the paper's PAA experiments use
        small constant factors; 4 is the default here).
    window:
        DTW band spec applied in the reduced space and to the final
        full-resolution distance computation.
    """

    name = "PAA"

    def __init__(
        self, segment_size: int = 4, window: int | float | None = 0.1
    ) -> None:
        super().__init__(window=window)
        if segment_size < 1:
            raise QueryError(f"segment_size must be >= 1, got {segment_size}")
        self.segment_size = int(segment_size)
        self._reduced: dict[int, list[tuple[SubsequenceId, np.ndarray, np.ndarray]]]
        self._reduced = {}

    def _n_segments(self, length: int) -> int:
        return max(1, length // self.segment_size)

    def prepare(
        self, dataset: Dataset, lengths: Sequence[int], start_step: int = 1
    ) -> None:
        super().prepare(dataset, lengths, start_step)
        self._reduced = {}
        for length in self._lengths:
            n_segments = self._n_segments(length)
            entries = []
            for ssid, values in dataset.subsequences(length, start_step=start_step):
                entries.append((ssid, values, paa_transform(values, n_segments)))
            self._reduced[length] = entries

    def best_match(
        self, query: np.ndarray, length: int | None = None
    ) -> SearchResult:
        query = as_float_array(query, "query")
        best_key = math.inf
        best_entry: tuple[SubsequenceId, np.ndarray] | None = None
        best_length = 0
        scale = math.sqrt(self.segment_size)
        for candidate_length in self._candidate_lengths(length):
            reduced_query = paa_transform(
                query, max(1, query.shape[0] // self.segment_size)
            )
            denominator = 2.0 * max(query.shape[0], candidate_length)
            raw_bound = (
                best_key * denominator / scale if math.isfinite(best_key) else None
            )
            for ssid, values, reduced in self._reduced[candidate_length]:
                reduced_distance = dtw(
                    reduced_query,
                    reduced,
                    window=self.window,
                    abandon_above=raw_bound,
                )
                if reduced_distance == math.inf:
                    continue
                # Approximate full-resolution normalized DTW (PDTW scale-up).
                key = scale * reduced_distance / denominator
                if key < best_key:
                    best_key = key
                    raw_bound = best_key * denominator / scale
                    best_entry = (ssid, values)
                    best_length = candidate_length
        if best_entry is None:
            raise QueryError("PAA found no candidate; widen the DTW window")
        ssid, values = best_entry
        denominator = 2.0 * max(query.shape[0], best_length)
        actual = dtw(query, values, window=self.window)
        return SearchResult(
            ssid=ssid,
            values=values,
            dtw=actual,
            dtw_normalized=actual / denominator,
        )
