"""Common interface for the similarity-search systems compared in §6.

Every method (ONEX and the three baselines) answers the same question:
*given a sample sequence, return the subsequence of the dataset with the
smallest DTW*. The harness treats them uniformly through this interface:
:meth:`SearchMethod.prepare` runs any preprocessing over a shared
subsequence enumeration (so all systems search exactly the same
candidate space), and :meth:`SearchMethod.best_match` answers one query.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.timeseries import SubsequenceId
from repro.exceptions import QueryError


@dataclass(frozen=True)
class SearchResult:
    """A baseline's answer: the chosen subsequence and its DTW to the query.

    ``dtw_normalized`` is the paper's Def. 6 scale (``DTW / 2n``), the
    quantity the accuracy metric of §6.2.1 compares across systems.
    """

    ssid: SubsequenceId
    values: np.ndarray
    dtw: float
    dtw_normalized: float

    def __lt__(self, other: "SearchResult") -> bool:
        return self.dtw_normalized < other.dtw_normalized


class SearchMethod(abc.ABC):
    """Base class for the §6 search systems."""

    #: Human-readable name used in benchmark tables.
    name: str = "abstract"

    def __init__(self, window: int | float | None = 0.1) -> None:
        self.window = window
        self._dataset: Dataset | None = None
        self._lengths: list[int] = []
        self._start_step = 1

    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        if self._dataset is None:
            raise QueryError(f"{self.name}: prepare() must be called before querying")
        return self._dataset

    @property
    def lengths(self) -> list[int]:
        return list(self._lengths)

    def prepare(
        self,
        dataset: Dataset,
        lengths: Sequence[int],
        start_step: int = 1,
    ) -> None:
        """Preprocess (already normalized) data over the shared enumeration.

        Subclasses extend this to build their own structures; they must
        call ``super().prepare(...)`` first.
        """
        self._dataset = dataset
        self._lengths = sorted(set(int(length) for length in lengths))
        self._start_step = int(start_step)
        if not self._lengths:
            raise QueryError(f"{self.name}: at least one length is required")

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def best_match(
        self, query: np.ndarray, length: int | None = None
    ) -> SearchResult:
        """Best match for ``query``; ``length`` restricts to one length."""

    def _candidate_lengths(self, length: int | None) -> list[int]:
        """The lengths this query must search."""
        if self._dataset is None:
            raise QueryError(f"{self.name}: prepare() must be called before querying")
        if length is None:
            return list(self._lengths)
        length = int(length)
        if length not in self._lengths:
            known = ", ".join(map(str, self._lengths))
            raise QueryError(
                f"{self.name}: length {length} not prepared; prepared lengths: {known}"
            )
        return [length]
