"""The Trillion baseline: the UCR-suite search of Rakthanmanon et al. [22].

Trillion answers *same-length* queries exactly, and owes its speed to a
cascade of increasingly expensive filters applied to each candidate:

1. **LB_Kim** — constant-time boundary/extrema bound;
2. **LB_Keogh** (query envelope vs candidate) — linear-time bound;
3. **LB_Keogh reversed** (candidate envelope vs query) — the
   query/data role reversal of [22];
4. **early-abandoning DTW** at the best-so-far.

As in the paper (§6.2.1), Trillion "only returns the best match of the
same length as the query": for ``Match = Any`` workloads it still
searches the query's own length, which is precisely why its accuracy
drops on any-length ground truth (Table 3).

Faithful to the UCR-suite code the paper downloaded, the search
operates on **z-normalized** windows (the suite hard-codes online
z-normalization of the query and every candidate). The paper's
evaluation, however, normalizes datasets min-max and scores answers on
that scale — the z-norm/min-max objective mismatch is what costs
Trillion accuracy on out-of-dataset queries (Tables 2 and 3) even
though its search is internally exact. Pass ``z_normalize=False`` to
search directly on the data's own scale instead.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.baselines.base import SearchMethod, SearchResult
from repro.data.dataset import Dataset
from repro.data.normalize import z_normalize
from repro.data.timeseries import SubsequenceId
from repro.distances.batch import EnvelopeStack, chunk_sizes, envelope_matrix
from repro.distances.dtw import dtw
from repro.distances.lower_bounds import CascadePruner, Envelope, PruneStats, envelope
from repro.distances.dtw import resolve_window
from repro.exceptions import QueryError
from repro.utils.validation import as_float_array


class Trillion(SearchMethod):
    """UCR-suite-style exact same-length search with cascading lower bounds.

    Parameters
    ----------
    window:
        DTW band spec (envelopes use the resolved radius).
    use_kim / use_keogh:
        Stage toggles for the lower-bound ablation bench.
    z_normalize:
        Search on z-normalized windows like the real UCR suite
        (default). The reported :class:`SearchResult` distances are
        always on the data's shared scale for comparability.
    use_batch_kernels:
        Run the cascade through the vectorized batch kernels (default):
        candidate windows are stacked per length, data envelopes are
        built in one vectorized pass, and the cascade sweeps the stack
        in chunks through :meth:`CascadePruner.distance_batch`. Exact —
        identical answers to the scalar sweep.

    ``last_prune_stats`` exposes the per-length :class:`PruneStats` the
    most recent query's pruner shared — cumulative across queries of
    that length since :meth:`prepare` (the adaptive cascade feeds on
    the accumulated rates), not per-query.
    """

    name = "Trillion"

    def __init__(
        self,
        window: int | float | None = 0.1,
        use_kim: bool = True,
        use_keogh: bool = True,
        z_normalize: bool = True,
        use_batch_kernels: bool = True,
    ) -> None:
        super().__init__(window=window)
        self.use_kim = use_kim
        self.use_keogh = use_keogh
        self.z_normalize = z_normalize
        self.use_batch_kernels = use_batch_kernels
        self._candidates: dict[int, list[tuple[SubsequenceId, np.ndarray]]] = {}
        self._search_values: dict[int, list[np.ndarray]] = {}
        self._envelopes: dict[int, list[Envelope]] = {}
        self._stacks: dict[int, np.ndarray] = {}
        self._envelope_stacks: dict[int, EnvelopeStack] = {}
        # One PruneStats per prepared length, shared by every query's
        # pruner: the adaptive cascade's measured per-stage prune rates
        # persist across queries, so stage skipping/ordering is learned
        # per candidate population instead of relearned per query.
        self._prune_stats: dict[int, PruneStats] = {}
        self.last_prune_stats: PruneStats | None = None

    def prepare(
        self, dataset: Dataset, lengths: Sequence[int], start_step: int = 1
    ) -> None:
        super().prepare(dataset, lengths, start_step)
        self._prune_stats = {}  # new candidate population: relearn rates
        self._candidates = {
            length: list(dataset.subsequences(length, start_step=start_step))
            for length in self._lengths
        }
        # The UCR suite z-normalizes every candidate window; precompute
        # them here (the real suite does it online with running sums).
        self._search_values = {
            length: [
                z_normalize(values) if self.z_normalize else values
                for _, values in entries
            ]
            for length, entries in self._candidates.items()
        }
        # Data envelopes are part of the offline pass in the UCR suite;
        # they enable the reversed LB_Keogh stage without per-query cost.
        # The batch path stacks the candidates and builds all envelopes
        # of one length in a single vectorized pass; the scalar path
        # keeps per-candidate arrays and skips the (duplicate) stacks.
        if self.use_batch_kernels:
            self._stacks = {
                length: np.stack(search_values)
                for length, search_values in self._search_values.items()
                if search_values
            }
            self._envelope_stacks = {
                length: envelope_matrix(
                    stack, resolve_window(length, length, self.window)
                )
                for length, stack in self._stacks.items()
            }
            self._envelopes = {}
        else:
            self._stacks = {}
            self._envelope_stacks = {}
            self._envelopes = {
                length: [
                    envelope(values, resolve_window(length, length, self.window))
                    for values in search_values
                ]
                for length, search_values in self._search_values.items()
            }

    def _search_length(self, query: np.ndarray, length: int) -> SearchResult | None:
        search_query = z_normalize(query) if self.z_normalize else query
        pruner = CascadePruner(
            search_query,
            window=self.window,
            use_kim=self.use_kim,
            use_keogh=self.use_keogh,
            stats=self._prune_stats.setdefault(length, PruneStats()),
        )
        denominator = 2.0 * max(query.shape[0], length)
        best_index = -1
        best_raw = math.inf
        entries = self._candidates[length]
        if self.use_batch_kernels:
            stack = self._stacks.get(length)
            stack_envelopes = self._envelope_stacks.get(length)
            n_candidates = 0 if stack is None else stack.shape[0]
            start = 0
            # A small opening chunk establishes the abandon bound before
            # the full-size chunks run the cascade against it.
            for size in chunk_sizes(n_candidates):
                stop = start + size
                chunk_envelopes = (
                    None
                    if stack_envelopes is None
                    else EnvelopeStack(
                        lower=stack_envelopes.lower[start:stop],
                        upper=stack_envelopes.upper[start:stop],
                        radius=stack_envelopes.radius,
                    )
                )
                distances = pruner.distance_batch(
                    stack[start:stop], best_raw, candidate_envelopes=chunk_envelopes
                )
                offset = int(np.argmin(distances))
                if distances[offset] < best_raw:
                    best_raw = float(distances[offset])
                    best_index = start + offset
                start = stop
        else:
            envelopes = self._envelopes[length]
            for index, search_values in enumerate(self._search_values[length]):
                distance = pruner.distance(
                    search_values, best_raw, candidate_envelope=envelopes[index]
                )
                if distance < best_raw:
                    best_raw = distance
                    best_index = index
        self.last_prune_stats = pruner.stats
        if best_index < 0:
            return None
        ssid, values = entries[best_index]
        # Report the answer's distance on the shared data scale, the way
        # the paper scores each system's retrieved solution.
        if self.z_normalize:
            reported = dtw(query, values, window=self.window)
        else:
            reported = best_raw
        return SearchResult(
            ssid=ssid,
            values=values,
            dtw=reported,
            dtw_normalized=reported / denominator,
        )

    def best_match(
        self, query: np.ndarray, length: int | None = None
    ) -> SearchResult:
        query = as_float_array(query, "query")
        if length is None:
            # Trillion's semantics: search the query's own length. Fall
            # back to the nearest prepared length when it is not indexed.
            target = int(query.shape[0])
            if target not in self._lengths:
                target = min(self._lengths, key=lambda L: abs(L - target))
        else:
            target = int(length)
            if target not in self._lengths:
                known = ", ".join(map(str, self._lengths))
                raise QueryError(
                    f"Trillion: length {target} not prepared; prepared: {known}"
                )
        result = self._search_length(query, target)
        if result is None:
            raise QueryError("Trillion found no candidate; widen the DTW window")
        return result
