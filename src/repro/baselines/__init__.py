"""The paper's comparison systems: Standard DTW, PAA and Trillion."""

from repro.baselines.base import SearchMethod, SearchResult
from repro.baselines.brute_force import StandardDTW
from repro.baselines.paa_search import PAASearch
from repro.baselines.trillion import Trillion

__all__ = [
    "SearchMethod",
    "SearchResult",
    "StandardDTW",
    "PAASearch",
    "Trillion",
]
