"""Dynamic Time Warping (paper Definitions 3 and 6).

The DTW distance is the minimum-weight warping path through the matrix of
point-wise Euclidean costs, with the weight of a path defined as the
square root of the sum of squared per-cell costs (Def. 3). The
implementation supports:

* an optional **Sakoe-Chiba band** (``window``) constraining the path to
  a corridor around the (length-scaled) diagonal,
* **early abandoning** (``abandon_above``): once every cell of a DP row
  exceeds the threshold, no path can finish below it, so the computation
  stops and returns ``inf`` (§5.3 of the paper, after [22]),
* the **normalized DTW** ``DTW̄ = DTW / 2n`` with ``n`` the longer length
  (Def. 6), which the ONEX framework uses everywhere thresholds appear.

The DP is dispatched through the kernel backend registry
(:mod:`repro.distances.backend`): the ``numpy`` backend runs
:func:`_dtw_squared` below — plain Python floats row by row, which for
the short sequences the benchmarks use beats repeated small-array NumPy
dispatch — and the optional ``numba`` backend runs a nopython kernel
with the identical float64 operation order (bit-identical results).
"""

from __future__ import annotations

import math

import numpy as np

from repro.distances.backend import get_backend
from repro.exceptions import DistanceError

_INF = math.inf


def resolve_window(n: int, m: int, window: int | float | None) -> int:
    """Turn a window spec into an absolute band radius.

    ``None`` means unconstrained; a float in (0, 1] is a fraction of the
    longer length; an int is an absolute radius. The radius is widened to
    at least ``|n - m|`` so that a valid path always exists — which also
    means an explicit ``window=0`` with unequal lengths resolves to
    ``|n - m|``, the narrowest feasible band. With equal lengths,
    ``window=0`` is honored exactly: the path is pinned to the diagonal
    (point-wise matching, so DTW degenerates to the Euclidean distance).
    """
    longer = max(n, m)
    if window is None:
        return longer
    if isinstance(window, float):
        if not 0.0 < window <= 1.0:
            raise DistanceError(f"fractional window must be in (0, 1], got {window}")
        radius = int(math.ceil(window * longer))
    else:
        radius = int(window)
        if radius < 0:
            raise DistanceError(f"window radius must be >= 0, got {radius}")
    return max(radius, abs(n - m))


def band_bounds(i: int, n: int, m: int, radius: int) -> tuple[int, int]:
    """Column range (1-based, inclusive) of DP row ``i`` inside the band.

    The Sakoe-Chiba corridor is centered on the length-scaled diagonal
    ``center = (i * m) // n`` for the 1-based row ``i``. Every banded
    kernel (:func:`dtw`, :func:`dtw_matrix`, the batch DP in
    :mod:`repro.distances.batch`) derives its band from here, so the
    geometry cannot drift between implementations.
    """
    center = (i * m) // n
    return max(1, center - radius), min(m, center + radius)


def _dtw_squared(
    x: np.ndarray,
    y: np.ndarray,
    radius: int,
    abandon_above_sq: float,
) -> float:
    """Banded DP over squared costs; returns the squared DTW (or inf)."""
    xs = x.tolist()
    ys = y.tolist()
    n, m = len(xs), len(ys)
    # ``previous`` is DP row i-1 over 1-based columns; previous[0] seeds the
    # (0, 0) corner so the first cell of row 1 can start a path there.
    previous = [_INF] * (m + 1)
    previous[0] = 0.0
    for i in range(1, n + 1):
        j_start, j_stop = band_bounds(i, n, m, radius)
        current = [_INF] * (m + 1)
        xi = xs[i - 1]
        row_min = _INF
        left = _INF  # D[i][0] is unreachable for every i >= 1
        for j in range(j_start, j_stop + 1):
            best = previous[j - 1]
            up = previous[j]
            if up < best:
                best = up
            if left < best:
                best = left
            if best == _INF:
                value = _INF
            else:
                diff = xi - ys[j - 1]
                value = best + diff * diff
            current[j] = value
            left = value
            if value < row_min:
                row_min = value
        if row_min > abandon_above_sq:
            return _INF
        previous = current
    result = previous[m]
    if result > abandon_above_sq:
        return _INF
    return result


def dtw(
    x: np.ndarray,
    y: np.ndarray,
    window: int | float | None = None,
    abandon_above: float | None = None,
) -> float:
    """DTW distance between two sequences (paper Definition 3).

    Parameters
    ----------
    x, y:
        Sequences of (possibly different) lengths.
    window:
        Optional Sakoe-Chiba band: ``None`` (unconstrained), a float
        fraction of the longer length, or an absolute int radius.
    abandon_above:
        Early-abandoning threshold on the *distance* (not its square);
        returns ``inf`` as soon as no path can beat it.

    Returns
    -------
    float
        ``min_P sqrt(sum of squared point costs along P)``, or ``inf``
        when abandoned.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim != 1 or y.ndim != 1 or x.size == 0 or y.size == 0:
        raise DistanceError("dtw requires two non-empty 1-D sequences")
    radius = resolve_window(x.shape[0], y.shape[0], window)
    threshold_sq = _INF if abandon_above is None else float(abandon_above) ** 2
    squared = get_backend().dtw_squared(x, y, radius, threshold_sq)
    return math.sqrt(squared) if squared != _INF else _INF


def normalized_dtw(
    x: np.ndarray,
    y: np.ndarray,
    window: int | float | None = None,
    abandon_above: float | None = None,
) -> float:
    """Normalized DTW ``DTW̄(X, Y) = DTW(X, Y) / 2n`` (paper Definition 6).

    ``n`` is the longer of the two lengths: the warping path can contain
    at most ``n + m <= 2n`` elements, so dividing by ``2n`` bounds the
    per-step contribution and makes thresholds comparable across lengths.
    ``abandon_above`` is interpreted on the *normalized* scale.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    denominator = 2.0 * max(x.shape[0], y.shape[0])
    raw_threshold = None if abandon_above is None else abandon_above * denominator
    raw = dtw(x, y, window=window, abandon_above=raw_threshold)
    return raw / denominator if raw != _INF else _INF


def dtw_matrix(
    x: np.ndarray, y: np.ndarray, window: int | float | None = None
) -> np.ndarray:
    """Full accumulated-cost matrix ``D`` with ``D[n-1, m-1] = DTW^2``.

    Out-of-band cells hold ``inf``. Exposed for tests, visualization and
    path extraction; the hot path uses :func:`dtw` instead.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim != 1 or y.ndim != 1 or x.size == 0 or y.size == 0:
        raise DistanceError("dtw_matrix requires two non-empty 1-D sequences")
    n, m = x.shape[0], y.shape[0]
    radius = resolve_window(n, m, window)
    cost = np.full((n, m), np.inf)
    for i in range(n):
        # Same band as the rolling DP, shifted to this matrix's 0-based
        # indexing (band_bounds speaks 1-based rows/columns).
        j_start, j_stop = band_bounds(i + 1, n, m, radius)
        for j in range(j_start - 1, j_stop):
            local = (x[i] - y[j]) ** 2
            if i == 0 and j == 0:
                best = 0.0
            else:
                candidates = []
                if i > 0:
                    candidates.append(cost[i - 1, j])
                if j > 0:
                    candidates.append(cost[i, j - 1])
                if i > 0 and j > 0:
                    candidates.append(cost[i - 1, j - 1])
                best = min(candidates)
            cost[i, j] = local + best
    return cost


def dtw_path(
    x: np.ndarray, y: np.ndarray, window: int | float | None = None
) -> list[tuple[int, int]]:
    """Optimal warping path as 0-based ``(i, j)`` pairs, start to end.

    Backtracks the accumulated-cost matrix, preferring the diagonal on
    ties (the convention of [25], Sakoe-Chiba).
    """
    cost = dtw_matrix(x, y, window=window)
    n, m = cost.shape
    if not np.isfinite(cost[n - 1, m - 1]):
        raise DistanceError("no warping path exists inside the given window")
    path = [(n - 1, m - 1)]
    i, j = n - 1, m - 1
    while i > 0 or j > 0:
        if i == 0:
            j -= 1
        elif j == 0:
            i -= 1
        else:
            diagonal = cost[i - 1, j - 1]
            up = cost[i - 1, j]
            left = cost[i, j - 1]
            if diagonal <= up and diagonal <= left:
                i -= 1
                j -= 1
            elif up <= left:
                i -= 1
            else:
                j -= 1
        path.append((i, j))
    path.reverse()
    return path
