"""Edit Distance on Real sequences (EDR).

EDR (Chen et al., SIGMOD 2005) completes the edit-distance family the
paper's related work surveys next to LCSS and ERP: two points *match*
(cost 0) when within a tolerance ``epsilon``, and every mismatch,
insertion or deletion costs exactly 1. Unlike ERP it is robust to
outliers (a wild value costs at most 1), and unlike LCSS it penalizes
gaps, which keeps it discriminative on noisy data.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DistanceError


def edr(x: np.ndarray, y: np.ndarray, epsilon: float = 0.1) -> int:
    """EDR distance: the minimum number of unit-cost edit operations.

    Parameters
    ----------
    x, y:
        Sequences (possibly different lengths).
    epsilon:
        Match tolerance: ``|x_i - y_j| <= epsilon`` costs 0, anything
        else (substitute / insert / delete) costs 1.

    Returns
    -------
    int
        A value in ``[abs(n - m), max(n, m)]``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim != 1 or y.ndim != 1 or x.size == 0 or y.size == 0:
        raise DistanceError("edr requires two non-empty 1-D sequences")
    if epsilon < 0:
        raise DistanceError(f"epsilon must be >= 0, got {epsilon}")
    n, m = x.shape[0], y.shape[0]
    previous = list(range(m + 1))  # deleting j prefix elements costs j
    for i in range(1, n + 1):
        current = [i] + [0] * m
        xi = x[i - 1]
        for j in range(1, m + 1):
            substitution = 0 if abs(xi - y[j - 1]) <= epsilon else 1
            current[j] = min(
                previous[j - 1] + substitution,  # match / substitute
                previous[j] + 1,  # delete from x
                current[j - 1] + 1,  # delete from y
            )
        previous = current
    return int(previous[m])


def normalized_edr(x: np.ndarray, y: np.ndarray, epsilon: float = 0.1) -> float:
    """EDR scaled by the longer length, in ``[0, 1]``."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    return edr(x, y, epsilon=epsilon) / max(x.shape[0], y.shape[0])
