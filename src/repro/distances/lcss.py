"""Longest Common Subsequence similarity for time series.

LCSS [29] counts the longest chain of point pairs matching within a
value tolerance ``epsilon`` and a time tolerance ``delta``. It appears in
the paper's related work as one of the elastic measures ONEX could have
used; it is included so users can contrast its behaviour with DTW.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DistanceError


def lcss(
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float = 0.1,
    delta: int | None = None,
) -> int:
    """Length of the longest common subsequence under (epsilon, delta).

    Parameters
    ----------
    x, y:
        Sequences (possibly different lengths).
    epsilon:
        Two points match when ``|x_i - y_j| <= epsilon``.
    delta:
        Optional time-window: matches require ``|i - j| <= delta``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim != 1 or y.ndim != 1 or x.size == 0 or y.size == 0:
        raise DistanceError("lcss requires two non-empty 1-D sequences")
    if epsilon < 0:
        raise DistanceError(f"epsilon must be >= 0, got {epsilon}")
    n, m = x.shape[0], y.shape[0]
    if delta is not None and delta < 0:
        raise DistanceError(f"delta must be >= 0, got {delta}")
    previous = [0] * (m + 1)
    for i in range(1, n + 1):
        current = [0] * (m + 1)
        xi = x[i - 1]
        for j in range(1, m + 1):
            in_window = delta is None or abs(i - j) <= delta
            if in_window and abs(xi - y[j - 1]) <= epsilon:
                current[j] = previous[j - 1] + 1
            else:
                up = previous[j]
                left = current[j - 1]
                current[j] = up if up >= left else left
        previous = current
    return previous[m]


def lcss_distance(
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float = 0.1,
    delta: int | None = None,
) -> float:
    """LCSS dissimilarity: ``1 - LCSS / min(n, m)`` in [0, 1]."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    shortest = min(x.shape[0], y.shape[0])
    return 1.0 - lcss(x, y, epsilon=epsilon, delta=delta) / shortest
