"""Euclidean distance and its normalized variant (paper Defs. 2 and 5)."""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import LengthMismatchError


def _check_equal_length(x: np.ndarray, y: np.ndarray) -> None:
    if x.shape[0] != y.shape[0]:
        raise LengthMismatchError(x.shape[0], y.shape[0], context="Euclidean distance")


def squared_euclidean(x: np.ndarray, y: np.ndarray) -> float:
    """Sum of squared point-wise differences (no square root)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    _check_equal_length(x, y)
    diff = x - y
    return float(np.dot(diff, diff))


def euclidean(x: np.ndarray, y: np.ndarray) -> float:
    """Euclidean distance ``ED(X, Y)`` between equal-length sequences.

    Paper Definition 2: ``sqrt(sum_i (x_i - y_i)^2)``.
    """
    return math.sqrt(squared_euclidean(x, y))


def normalized_euclidean(x: np.ndarray, y: np.ndarray) -> float:
    """Length-normalized Euclidean distance (paper Definition 5).

    ``ED̄(X, Y) = ED(X, Y) / sqrt(n)`` — the root-mean-square point-wise
    difference, comparable across lengths.
    """
    x = np.asarray(x, dtype=np.float64)
    return euclidean(x, y) / math.sqrt(x.shape[0])


def euclidean_to_many(x: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Euclidean distances from ``x`` to every row of ``candidates``.

    Vectorized hot path used by group construction (each incoming
    subsequence is compared against all current representatives at once).

    Parameters
    ----------
    x:
        Query vector of shape ``(n,)``.
    candidates:
        Matrix of shape ``(k, n)``.

    Returns
    -------
    numpy.ndarray
        Vector of ``k`` distances.
    """
    x = np.asarray(x, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    if candidates.ndim == 1:
        candidates = candidates.reshape(1, -1)
    if candidates.shape[1] != x.shape[0]:
        raise LengthMismatchError(
            x.shape[0], candidates.shape[1], context="euclidean_to_many"
        )
    diff = candidates - x
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))
