"""Similarity distances: ED, DTW, lower bounds (scalar and vectorized
batch kernels, dispatched through the pluggable kernel backend
registry), PAA, LCSS, ERP."""

from repro.distances.backend import (
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
)
from repro.distances.euclidean import (
    euclidean,
    euclidean_to_many,
    normalized_euclidean,
    squared_euclidean,
)
from repro.distances.dtw import (
    band_bounds,
    dtw,
    dtw_matrix,
    dtw_path,
    normalized_dtw,
    resolve_window,
)
from repro.distances.batch import (
    EnvelopeStack,
    dtw_batch,
    envelope_matrix,
    lb_keogh_batch,
    lb_keogh_reverse_batch,
    lb_kim_batch,
    sliding_minmax,
)
from repro.distances.lower_bounds import (
    Envelope,
    CascadePruner,
    envelope,
    lb_keogh,
    lb_kim,
)
from repro.distances.paa import paa_distance, paa_transform, pdtw
from repro.distances.lcss import lcss, lcss_distance
from repro.distances.erp import erp
from repro.distances.registry import DISTANCES, get_distance

__all__ = [
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_backend",
    "euclidean",
    "euclidean_to_many",
    "normalized_euclidean",
    "squared_euclidean",
    "band_bounds",
    "dtw",
    "dtw_matrix",
    "dtw_path",
    "normalized_dtw",
    "resolve_window",
    "EnvelopeStack",
    "dtw_batch",
    "envelope_matrix",
    "lb_keogh_batch",
    "lb_keogh_reverse_batch",
    "lb_kim_batch",
    "sliding_minmax",
    "Envelope",
    "CascadePruner",
    "envelope",
    "lb_keogh",
    "lb_kim",
    "paa_distance",
    "paa_transform",
    "pdtw",
    "lcss",
    "lcss_distance",
    "erp",
    "DISTANCES",
    "get_distance",
]
