"""Lower bounds for DTW: LB_Kim, LB_Keogh and the UCR-suite cascade.

These are the pruning tools of §5.3 (after Rakthanmanon et al. [22]):

* :func:`lb_kim` — a cheap bound from the first/last points and global
  extrema, filtering the cheapest rejections first;
* :func:`envelope` / :func:`lb_keogh` — the classic Keogh bound: the
  candidate is compared against a sliding min/max corridor around the
  query (or vice versa, the "reversed" role of [22]);
* :class:`CascadePruner` — applies the bounds before early-abandoning
  DTW, keeping per-stage statistics. The cascade is **adaptive**: the
  measured per-stage prune rates (per :class:`PruneStats` object, which
  callers may share across queries of one length bucket) drive the
  stage order, and stages whose observed prune rate cannot pay for
  their evaluation cost are skipped — always safely, because every
  stage is an optional admissible filter.

The scalar bound evaluations dispatch through the kernel backend
registry (:mod:`repro.distances.backend`): the JIT backend accumulates
LB_Keogh in the query's descending-``|z|`` position order with
cumulative-sum early abandon (the UCR-suite trick), the numpy backend
computes the vectorized full sum — both make identical prune
decisions.

Every bound is admissible: ``bound <= DTW`` for equal-length sequences
whenever the DTW band radius is at least the envelope radius.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.distances.backend import get_backend
from repro.distances.dtw import dtw, resolve_window
from repro.exceptions import DistanceError, LengthMismatchError

# NOTE: repro.distances.batch imports only from repro.distances.dtw and
# repro.distances.backend, so this import cannot form a cycle.
from repro.distances.batch import (
    EnvelopeStack,
    dtw_batch,
    envelope_matrix,
    kim_combine,
    lb_keogh_batch,
    lb_keogh_reverse_batch,
    lb_kim_batch,
    sliding_minmax,
)


def _lb_kim_numpy(x: np.ndarray, y: np.ndarray) -> float:
    """Numpy-backend LB_Kim kernel (shares the batch path's term logic)."""
    boundary_sq = (x[0] - y[0]) ** 2 + (x[-1] - y[-1]) ** 2
    max_diff = abs(float(x.max()) - float(y.max()))
    min_diff = abs(float(x.min()) - float(y.min()))
    return float(kim_combine(boundary_sq, max_diff, min_diff))


def _lb_keogh_squared_numpy(
    values: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    order: np.ndarray,  # noqa: ARG001 - full vectorized sum ignores order
    bound_sq: float,  # noqa: ARG001 - and needs no early abandon
) -> float:
    """Numpy-backend LB_Keogh kernel: full vectorized squared sum.

    The reorder/early-abandon hints only pay off in compiled code; at
    numpy speed two ``dot`` reductions beat any Python-level loop, and
    the full sum trivially satisfies the backend contract.
    """
    above = np.maximum(values - upper, 0.0)
    below = np.maximum(lower - values, 0.0)
    return float(np.dot(above, above) + np.dot(below, below))


def lb_kim(x: np.ndarray, y: np.ndarray) -> float:
    """Cheap lower bound on DTW from boundary points and extrema.

    Any warping path matches the first points to each other and the last
    points to each other, so ``(x_0-y_0)^2 + (x_end-y_end)^2 <= DTW^2``.
    Each sequence's maximum must be matched to *some* point of the other,
    which cannot exceed the other's maximum, so ``|max(x) - max(y)|``
    (and symmetrically the minima) also bound DTW. The endpoint/extrema
    term logic is shared with :func:`repro.distances.batch.lb_kim_batch`
    (single source: ``kim_features`` / ``kim_combine``), and the
    evaluation dispatches to the active kernel backend.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size == 0 or y.size == 0:
        raise DistanceError("lb_kim requires non-empty sequences")
    return float(get_backend().lb_kim(x, y))


@dataclass(frozen=True)
class Envelope:
    """Sliding min/max corridor around a sequence for LB_Keogh."""

    lower: np.ndarray
    upper: np.ndarray
    radius: int

    def __len__(self) -> int:
        return self.lower.shape[0]


def envelope(y: np.ndarray, radius: int) -> Envelope:
    """Build the LB_Keogh envelope of ``y`` with the given band radius.

    ``upper[i] = max(y[i-r .. i+r])`` and ``lower[i]`` its min, with the
    window clipped at the sequence boundary.
    """
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1 or y.size == 0:
        raise DistanceError("envelope requires a non-empty 1-D sequence")
    radius = int(radius)
    if radius < 0:
        raise DistanceError(f"envelope radius must be >= 0, got {radius}")
    lower, upper = sliding_minmax(y, radius)
    return Envelope(lower=lower, upper=upper, radius=radius)


def lb_keogh(x: np.ndarray, env: Envelope) -> float:
    """LB_Keogh lower bound of ``DTW(x, y)`` given ``y``'s envelope.

    Sums the squared excursions of ``x`` outside the corridor. Requires
    equal lengths (the bound is defined for same-length comparison; the
    cascade skips it otherwise).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape[0] != len(env):
        raise LengthMismatchError(x.shape[0], len(env), context="LB_Keogh")
    above = np.maximum(x - env.upper, 0.0)
    below = np.maximum(env.lower - x, 0.0)
    return math.sqrt(float(np.dot(above, above) + np.dot(below, below)))


@dataclass
class PruneStats:
    """Counts of how candidates were disposed of by the cascade.

    ``evaluated_*`` counts how often each bound actually *ran* (the
    adaptive cascade skips stages, so evaluations and examinations
    diverge); ``pruned_*`` counts the kills. The ratio is the measured
    prune rate that drives the adaptive stage order — share one
    ``PruneStats`` across the pruners of one candidate population (as
    :class:`~repro.baselines.trillion.Trillion` does per length) and
    the learned rates persist across queries.
    """

    examined: int = 0
    pruned_kim: int = 0
    pruned_keogh_query: int = 0
    pruned_keogh_data: int = 0
    abandoned_dtw: int = 0
    full_dtw: int = 0
    evaluated_kim: int = 0
    evaluated_keogh_query: int = 0
    evaluated_keogh_data: int = 0

    @property
    def pruned(self) -> int:
        """Total candidates rejected before a full DTW finished."""
        return (
            self.pruned_kim
            + self.pruned_keogh_query
            + self.pruned_keogh_data
            + self.abandoned_dtw
        )


#: Per-element evaluation cost of each bound, in arbitrary shared units
#: (LB_Kim scans the candidate's extrema: ~2 passes; LB_Keogh is one
#: compare-and-accumulate pass per direction; the data direction may
#: additionally have to build the candidate envelope). The DP costs
#: ``band width`` units per element, so a stage pays for itself when
#: ``prune_rate * band_width >= stage_cost`` — the adaptive plan's
#: keep/skip rule (DESIGN.md §10 derives it).
_STAGE_COSTS = {"kim": 2.0, "keogh_query": 2.0, "keogh_data": 3.0}
_REFERENCE_ORDER = ("kim", "keogh_query", "keogh_data")
#: Laplace-style smoothing of the measured prune rates: cold stages
#: start at an optimistic 0.5 so they run until real counts displace
#: the prior, and a handful of unlucky candidates can't kill a stage.
_PRIOR_RATE = 0.5
_PRIOR_WEIGHT = 8.0


@dataclass
class CascadePruner:
    """UCR-suite-style cascading filter for one query sequence.

    The pruner owns the query's envelope and applies admissible lower
    bounds — ``lb_kim``, ``lb_keogh`` (query envelope vs candidate),
    ``lb_keogh`` reversed (candidate envelope vs query) — before full
    DTW with early abandoning at the caller's best-so-far. Bound
    evaluations dispatch through the active kernel backend; the
    LB_Keogh accumulations visit positions in the query's descending
    ``|z|`` order so JIT backends abandon after the large terms.

    The stage order is **adaptive**: once ``adapt_min_examined``
    candidates have been seen, the measured per-stage prune rates in
    :attr:`stats` (smoothed toward an optimistic prior) reorder the
    surviving stages by prune-rate-per-cost and *skip* stages whose
    rate cannot pay for their evaluation cost against the DP they
    would save. Every ``adapt_reprobe`` candidates one candidate runs
    the full reference cascade so skipped stages keep collecting
    evidence and can return when the candidate distribution shifts.
    Adaptation never changes results — each bound is an optional
    admissible filter — only which bounds run (asserted against the
    fixed-order reference by ``tests/test_backend.py``). Pass a shared
    :class:`PruneStats` to carry learned rates across queries of one
    candidate population (per-bucket, as ``Trillion`` does).

    Parameters
    ----------
    query:
        The query sequence.
    window:
        DTW band spec (same semantics as :func:`repro.distances.dtw.dtw`).
    use_kim / use_keogh:
        Toggles for ablation experiments.
    adaptive:
        ``False`` pins the fixed reference order (the pre-adaptive
        behaviour; also the correctness reference in tests).
    adapt_min_examined / adapt_interval / adapt_reprobe:
        Warm-up sample floor, re-planning cadence, and full-cascade
        reprobe cadence, all in examined candidates.
    """

    query: np.ndarray
    window: int | float | None = 0.1
    use_kim: bool = True
    use_keogh: bool = True
    adaptive: bool = True
    adapt_min_examined: int = 64
    adapt_interval: int = 64
    adapt_reprobe: int = 512
    stats: PruneStats = field(default_factory=PruneStats)

    def __post_init__(self) -> None:
        self.query = np.asarray(self.query, dtype=np.float64)
        self._radius = resolve_window(len(self.query), len(self.query), self.window)
        self._query_envelope = envelope(self.query, self._radius)
        # Descending |z| visit order for the LB_Keogh accumulations
        # ([22]: sort by |z-normalized value|; the positive scale factor
        # cannot change the order, so |q - mean| suffices).
        centered = np.abs(self.query - self.query.mean())
        self._abandon_order = np.argsort(-centered, kind="stable").astype(np.intp)
        self._reference = tuple(
            stage
            for stage in _REFERENCE_ORDER
            if (self.use_kim if stage == "kim" else self.use_keogh)
        )
        self._dtw_width = float(min(2 * self._radius + 1, len(self.query)))
        self._adaptive_plan = self._reference
        # Start from whatever the (possibly shared) stats already hold.
        self._plan_examined = -1
        self._next_reprobe = self.stats.examined + int(self.adapt_reprobe)

    # ------------------------------------------------------------------
    # Adaptive stage planning
    # ------------------------------------------------------------------
    @staticmethod
    def _smoothed_rate(pruned: int, evaluated: int) -> float:
        return (pruned + _PRIOR_RATE * _PRIOR_WEIGHT) / (evaluated + _PRIOR_WEIGHT)

    def _stage_rates(self) -> dict[str, float]:
        s = self.stats
        return {
            "kim": self._smoothed_rate(s.pruned_kim, s.evaluated_kim),
            "keogh_query": self._smoothed_rate(
                s.pruned_keogh_query, s.evaluated_keogh_query
            ),
            "keogh_data": self._smoothed_rate(
                s.pruned_keogh_data, s.evaluated_keogh_data
            ),
        }

    def _recompute_plan(self) -> None:
        rates = self._stage_rates()
        kept = [
            stage
            for stage in self._reference
            if rates[stage] * self._dtw_width >= _STAGE_COSTS[stage]
        ]
        # Highest prune-rate-per-cost first; the stable sort keeps the
        # reference (cheapest-first) order on ties.
        kept.sort(key=lambda stage: rates[stage] / _STAGE_COSTS[stage], reverse=True)
        self._adaptive_plan = tuple(kept)
        self._plan_examined = self.stats.examined

    def plan(self, reprobe_span: int = 1) -> tuple[str, ...]:
        """Stage order for the next candidate (advances the reprobe clock).

        ``reprobe_span`` is how many candidates the returned plan will
        cover (1 for the scalar path, the chunk size for the batch
        path). A due reprobe applies the reference cascade to that
        whole span, so the next reprobe is scheduled ``adapt_reprobe *
        reprobe_span`` candidates out — keeping the *fraction* of
        reprobed candidates near ``1 / adapt_reprobe`` regardless of
        chunking.
        """
        if not self.adaptive:
            return self._reference
        examined = self.stats.examined
        if examined < self.adapt_min_examined:
            return self._reference
        if examined >= self._next_reprobe:
            self._next_reprobe = examined + int(self.adapt_reprobe) * max(
                1, int(reprobe_span)
            )
            return self._reference
        if (
            self._plan_examined < 0
            or examined - self._plan_examined >= self.adapt_interval
        ):
            self._recompute_plan()
        return self._adaptive_plan

    def distance(
        self,
        candidate: np.ndarray,
        best_so_far: float,
        candidate_envelope: Envelope | None = None,
    ) -> float:
        """DTW(query, candidate), or ``inf`` if provably >= ``best_so_far``.

        ``best_so_far`` is on the raw (unnormalized) DTW scale. Pass a
        precomputed ``candidate_envelope`` (as the UCR suite does — data
        envelopes are built once, not per query) to enable the reversed
        LB_Keogh stage cheaply; without one, that stage builds the
        envelope on the fly.
        """
        self.stats.examined += 1
        candidate = np.asarray(candidate, dtype=np.float64)
        same_length = candidate.shape[0] == self.query.shape[0]
        if math.isfinite(best_so_far):
            backend = get_backend()
            best_sq = best_so_far * best_so_far
            for stage in self.plan():
                if stage == "kim":
                    self.stats.evaluated_kim += 1
                    if backend.lb_kim(self.query, candidate) >= best_so_far:
                        self.stats.pruned_kim += 1
                        return math.inf
                elif not same_length:
                    continue  # LB_Keogh is defined for equal lengths only
                elif stage == "keogh_query":
                    self.stats.evaluated_keogh_query += 1
                    excursion_sq = backend.lb_keogh_squared(
                        candidate,
                        self._query_envelope.lower,
                        self._query_envelope.upper,
                        self._abandon_order,
                        best_sq,
                    )
                    if excursion_sq >= best_sq:
                        self.stats.pruned_keogh_query += 1
                        return math.inf
                else:  # keogh_data (the reversed direction of [22])
                    data_envelope = (
                        candidate_envelope
                        if candidate_envelope is not None
                        and candidate_envelope.radius >= self._radius
                        else envelope(candidate, self._radius)
                    )
                    self.stats.evaluated_keogh_data += 1
                    excursion_sq = backend.lb_keogh_squared(
                        self.query,
                        data_envelope.lower,
                        data_envelope.upper,
                        self._abandon_order,
                        best_sq,
                    )
                    if excursion_sq >= best_sq:
                        self.stats.pruned_keogh_data += 1
                        return math.inf
        result = dtw(self.query, candidate, window=self.window, abandon_above=best_so_far)
        if result == math.inf:
            self.stats.abandoned_dtw += 1
        else:
            self.stats.full_dtw += 1
        return result

    def distance_batch(
        self,
        candidates: np.ndarray,
        best_so_far: float,
        candidate_envelopes: EnvelopeStack | None = None,
    ) -> np.ndarray:
        """Batch cascade: ``DTW(query, row)`` or ``inf`` for each stack row.

        Vectorized counterpart of :meth:`distance`: the same stages run
        over the whole ``(k, n)`` candidate stack at once, sharing one
        ``best_so_far`` bound. Exactness is preserved — a candidate is
        dropped only when an admissible bound proves it cannot beat the
        bound, so finite entries of the result are true DTW distances.
        Pass a precomputed :class:`~repro.distances.batch.EnvelopeStack`
        (rows aligned with ``candidates``) to run the reversed LB_Keogh
        stage without rebuilding envelopes.

        The adaptive plan contributes *skips* here (a stage whose
        measured prune rate can't pay for itself doesn't run); the
        evaluation order of the surviving stages stays fixed because
        each vectorized stage already amortizes its cost over the whole
        stack.
        """
        matrix = np.asarray(candidates, dtype=np.float64)
        if matrix.ndim != 2:
            raise DistanceError("distance_batch requires a 2-D candidate stack")
        k = matrix.shape[0]
        self.stats.examined += k
        results = np.full(k, math.inf)
        if k == 0:
            return results
        same_length = matrix.shape[1] == self.query.shape[0]
        bounded = math.isfinite(best_so_far)
        plan = self.plan(reprobe_span=k) if bounded else ()
        alive = np.arange(k)
        if "kim" in plan:
            self.stats.evaluated_kim += k
            keep = lb_kim_batch(self.query, matrix) < best_so_far
            self.stats.pruned_kim += int(k - keep.sum())
            alive, matrix = alive[keep], matrix[keep]
        if same_length and alive.size and "keogh_query" in plan:
            self.stats.evaluated_keogh_query += int(alive.size)
            keep = (
                lb_keogh_batch(
                    matrix, self._query_envelope.lower, self._query_envelope.upper
                )
                < best_so_far
            )
            self.stats.pruned_keogh_query += int(alive.size - keep.sum())
            alive, matrix = alive[keep], matrix[keep]
        if same_length and alive.size and "keogh_data" in plan:
            if (
                candidate_envelopes is not None
                and candidate_envelopes.radius >= self._radius
            ):
                stack = EnvelopeStack(
                    lower=candidate_envelopes.lower[alive],
                    upper=candidate_envelopes.upper[alive],
                    radius=candidate_envelopes.radius,
                )
            else:
                stack = envelope_matrix(matrix, self._radius)
            self.stats.evaluated_keogh_data += int(alive.size)
            keep = lb_keogh_reverse_batch(self.query, stack) < best_so_far
            self.stats.pruned_keogh_data += int(alive.size - keep.sum())
            alive, matrix = alive[keep], matrix[keep]
        if not alive.size:
            return results
        radius = resolve_window(self.query.shape[0], matrix.shape[1], self.window)
        distances = dtw_batch(
            self.query,
            matrix,
            radius,
            abandon_above=best_so_far if bounded else None,
        )
        finite = np.isfinite(distances)
        self.stats.full_dtw += int(finite.sum())
        self.stats.abandoned_dtw += int(alive.size - finite.sum())
        results[alive] = distances
        return results
