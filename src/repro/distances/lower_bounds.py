"""Lower bounds for DTW: LB_Kim, LB_Keogh and the UCR-suite cascade.

These are the pruning tools of §5.3 (after Rakthanmanon et al. [22]):

* :func:`lb_kim` — an O(1) bound from the first/last points and global
  extrema, filtering the cheapest rejections first;
* :func:`envelope` / :func:`lb_keogh` — the classic Keogh bound: the
  candidate is compared against a sliding min/max corridor around the
  query (or vice versa, the "reversed" role of [22]);
* :class:`CascadePruner` — applies the bounds in increasing cost order
  and finishes with early-abandoning DTW, keeping per-stage statistics.

Every bound is admissible: ``bound <= DTW`` for equal-length sequences
whenever the DTW band radius is at least the envelope radius.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.distances.dtw import dtw, resolve_window
from repro.exceptions import DistanceError, LengthMismatchError

# NOTE: repro.distances.batch imports only from repro.distances.dtw, so
# this import cannot form a cycle.
from repro.distances.batch import (
    EnvelopeStack,
    dtw_batch,
    envelope_matrix,
    lb_keogh_batch,
    lb_keogh_reverse_batch,
    lb_kim_batch,
    sliding_minmax,
)


def lb_kim(x: np.ndarray, y: np.ndarray) -> float:
    """O(1) lower bound on DTW from boundary points and extrema.

    Any warping path matches the first points to each other and the last
    points to each other, so ``(x_0-y_0)^2 + (x_end-y_end)^2 <= DTW^2``.
    Each sequence's maximum must be matched to *some* point of the other,
    which cannot exceed the other's maximum, so ``|max(x) - max(y)|``
    (and symmetrically the minima) also bound DTW.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size == 0 or y.size == 0:
        raise DistanceError("lb_kim requires non-empty sequences")
    boundary_sq = (x[0] - y[0]) ** 2 + (x[-1] - y[-1]) ** 2
    max_diff = abs(float(x.max()) - float(y.max()))
    min_diff = abs(float(x.min()) - float(y.min()))
    return max(math.sqrt(boundary_sq), max_diff, min_diff)


@dataclass(frozen=True)
class Envelope:
    """Sliding min/max corridor around a sequence for LB_Keogh."""

    lower: np.ndarray
    upper: np.ndarray
    radius: int

    def __len__(self) -> int:
        return self.lower.shape[0]


def envelope(y: np.ndarray, radius: int) -> Envelope:
    """Build the LB_Keogh envelope of ``y`` with the given band radius.

    ``upper[i] = max(y[i-r .. i+r])`` and ``lower[i]`` its min, with the
    window clipped at the sequence boundary.
    """
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1 or y.size == 0:
        raise DistanceError("envelope requires a non-empty 1-D sequence")
    radius = int(radius)
    if radius < 0:
        raise DistanceError(f"envelope radius must be >= 0, got {radius}")
    lower, upper = sliding_minmax(y, radius)
    return Envelope(lower=lower, upper=upper, radius=radius)


def lb_keogh(x: np.ndarray, env: Envelope) -> float:
    """LB_Keogh lower bound of ``DTW(x, y)`` given ``y``'s envelope.

    Sums the squared excursions of ``x`` outside the corridor. Requires
    equal lengths (the bound is defined for same-length comparison; the
    cascade skips it otherwise).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape[0] != len(env):
        raise LengthMismatchError(x.shape[0], len(env), context="LB_Keogh")
    above = np.maximum(x - env.upper, 0.0)
    below = np.maximum(env.lower - x, 0.0)
    return math.sqrt(float(np.dot(above, above) + np.dot(below, below)))


@dataclass
class PruneStats:
    """Counts of how candidates were disposed of by the cascade."""

    examined: int = 0
    pruned_kim: int = 0
    pruned_keogh_query: int = 0
    pruned_keogh_data: int = 0
    abandoned_dtw: int = 0
    full_dtw: int = 0

    @property
    def pruned(self) -> int:
        """Total candidates rejected before a full DTW finished."""
        return (
            self.pruned_kim
            + self.pruned_keogh_query
            + self.pruned_keogh_data
            + self.abandoned_dtw
        )


@dataclass
class CascadePruner:
    """UCR-suite-style cascading filter for one query sequence.

    The pruner owns the query's envelope and applies, in order:
    ``lb_kim`` → ``lb_keogh`` (query envelope vs candidate) →
    ``lb_keogh`` reversed (candidate envelope vs query) → full DTW with
    early abandoning at the caller's best-so-far.

    Parameters
    ----------
    query:
        The query sequence.
    window:
        DTW band spec (same semantics as :func:`repro.distances.dtw.dtw`).
    use_kim / use_keogh:
        Toggles for ablation experiments.
    """

    query: np.ndarray
    window: int | float | None = 0.1
    use_kim: bool = True
    use_keogh: bool = True
    stats: PruneStats = field(default_factory=PruneStats)

    def __post_init__(self) -> None:
        self.query = np.asarray(self.query, dtype=np.float64)
        self._radius = resolve_window(len(self.query), len(self.query), self.window)
        self._query_envelope = envelope(self.query, self._radius)

    def distance(
        self,
        candidate: np.ndarray,
        best_so_far: float,
        candidate_envelope: Envelope | None = None,
    ) -> float:
        """DTW(query, candidate), or ``inf`` if provably >= ``best_so_far``.

        ``best_so_far`` is on the raw (unnormalized) DTW scale. Pass a
        precomputed ``candidate_envelope`` (as the UCR suite does — data
        envelopes are built once, not per query) to enable the reversed
        LB_Keogh stage cheaply; without one, that stage builds the
        envelope on the fly.
        """
        self.stats.examined += 1
        candidate = np.asarray(candidate, dtype=np.float64)
        same_length = candidate.shape[0] == self.query.shape[0]
        if self.use_kim and lb_kim(self.query, candidate) >= best_so_far:
            self.stats.pruned_kim += 1
            return math.inf
        if self.use_keogh and same_length:
            if lb_keogh(candidate, self._query_envelope) >= best_so_far:
                self.stats.pruned_keogh_query += 1
                return math.inf
            data_envelope = (
                candidate_envelope
                if candidate_envelope is not None
                and candidate_envelope.radius >= self._radius
                else envelope(candidate, self._radius)
            )
            if lb_keogh(self.query, data_envelope) >= best_so_far:
                self.stats.pruned_keogh_data += 1
                return math.inf
        result = dtw(self.query, candidate, window=self.window, abandon_above=best_so_far)
        if result == math.inf:
            self.stats.abandoned_dtw += 1
        else:
            self.stats.full_dtw += 1
        return result

    def distance_batch(
        self,
        candidates: np.ndarray,
        best_so_far: float,
        candidate_envelopes: EnvelopeStack | None = None,
    ) -> np.ndarray:
        """Batch cascade: ``DTW(query, row)`` or ``inf`` for each stack row.

        Vectorized counterpart of :meth:`distance`: the same stages run
        over the whole ``(k, n)`` candidate stack at once, sharing one
        ``best_so_far`` bound. Exactness is preserved — a candidate is
        dropped only when an admissible bound proves it cannot beat the
        bound, so finite entries of the result are true DTW distances.
        Pass a precomputed :class:`~repro.distances.batch.EnvelopeStack`
        (rows aligned with ``candidates``) to run the reversed LB_Keogh
        stage without rebuilding envelopes.
        """
        matrix = np.asarray(candidates, dtype=np.float64)
        if matrix.ndim != 2:
            raise DistanceError("distance_batch requires a 2-D candidate stack")
        k = matrix.shape[0]
        self.stats.examined += k
        results = np.full(k, math.inf)
        if k == 0:
            return results
        same_length = matrix.shape[1] == self.query.shape[0]
        bounded = math.isfinite(best_so_far)
        alive = np.arange(k)
        if self.use_kim and bounded:
            keep = lb_kim_batch(self.query, matrix) < best_so_far
            self.stats.pruned_kim += int(k - keep.sum())
            alive, matrix = alive[keep], matrix[keep]
        if self.use_keogh and same_length and bounded and alive.size:
            keep = (
                lb_keogh_batch(
                    matrix, self._query_envelope.lower, self._query_envelope.upper
                )
                < best_so_far
            )
            self.stats.pruned_keogh_query += int(alive.size - keep.sum())
            alive, matrix = alive[keep], matrix[keep]
            if alive.size:
                if (
                    candidate_envelopes is not None
                    and candidate_envelopes.radius >= self._radius
                ):
                    stack = EnvelopeStack(
                        lower=candidate_envelopes.lower[alive],
                        upper=candidate_envelopes.upper[alive],
                        radius=candidate_envelopes.radius,
                    )
                else:
                    stack = envelope_matrix(matrix, self._radius)
                keep = lb_keogh_reverse_batch(self.query, stack) < best_so_far
                self.stats.pruned_keogh_data += int(alive.size - keep.sum())
                alive, matrix = alive[keep], matrix[keep]
        if not alive.size:
            return results
        radius = resolve_window(self.query.shape[0], matrix.shape[1], self.window)
        distances = dtw_batch(
            self.query,
            matrix,
            radius,
            abandon_above=best_so_far if bounded else None,
        )
        finite = np.isfinite(distances)
        self.stats.full_dtw += int(finite.sum())
        self.stats.abandoned_dtw += int(alive.size - finite.sum())
        results[alive] = distances
        return results
