"""Vectorized batch distance kernels over stacks of equal-length candidates.

The UCR-suite cascade of [22] (LB_Kim → LB_Keogh → early-abandoning DTW)
is embarrassingly data-parallel across candidates: every stage applies
the same arithmetic to every candidate of one length. The scalar kernels
in :mod:`repro.distances.dtw` and :mod:`repro.distances.lower_bounds`
pay a Python-interpreter round trip per candidate; the kernels here pay
it once per *row* and let NumPy sweep the whole candidate stack:

* :func:`sliding_minmax` / :func:`envelope_matrix` — the LB_Keogh
  envelope as a windowed min/max without the per-position Python loop
  (one ``sliding_window_view`` reduction, boundary-clipped exactly like
  the scalar :func:`repro.distances.lower_bounds.envelope`);
* :func:`lb_kim_batch` — LB_Kim for all candidates in five reductions;
* :func:`lb_keogh_batch` / :func:`lb_keogh_reverse_batch` — LB_Keogh of
  each candidate against one envelope, and of one query against each
  candidate's envelope (the role reversal of [22]);
* :func:`dtw_batch` — the banded DP advanced one row at a time across
  *all* surviving candidates simultaneously, with a shared
  early-abandon bound: candidates whose entire DP row exceeds the bound
  are compacted out mid-flight.

The serving layer stacks whole *query groups* the same way: a batch of
equal-length queries against one candidate stack is a set of
``(query, candidate)`` pairs whose band geometry is shared, so

* :func:`lb_kim_stacked` / :func:`lb_keogh_reverse_stacked` compute the
  full ``(n_queries, n_candidates)`` lower-bound matrix in a handful of
  reductions, and
* :func:`dtw_pairs` advances one DP over an arbitrary pair list — each
  lane carries its own query row and its own early-abandon bound — so a
  length-grouped ``query_batch`` pays the Python-level DP loop once per
  chunk of pairs instead of once per query.

All batch kernels agree with their scalar counterparts to floating-point
tolerance (see ``tests/test_batch_kernels.py``); the cascade stays exact
because every stage is admissible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.distances.backend import get_backend
from repro.distances.dtw import band_bounds
from repro.exceptions import DistanceError, LengthMismatchError

_INF = math.inf

#: Candidates per vectorized DTW call. Chunking lets a shared
#: early-abandon bound tighten between calls (as a scalar sweep's
#: running best does) while each call still amortizes the Python-level
#: DP loop over a stack of candidates.
BATCH_CHUNK = 128

#: Size of the opening chunk when no abandon bound exists yet. Callers
#: order candidates so likely-best ones come first (lower-bound sort,
#: LSI outward order), so a small opening chunk establishes a tight
#: bound cheaply and lets the full-size chunks that follow be
#: lower-bound-pruned and early-abandoned.
FIRST_CHUNK = 8


def chunk_sizes(total: int) -> Iterator[int]:
    """Chunk schedule for a bounded sweep: one small bound-setting
    chunk, then full :data:`BATCH_CHUNK` chunks."""
    if total <= 0:
        return
    yield min(FIRST_CHUNK, total)
    remaining = total - FIRST_CHUNK
    while remaining > 0:
        yield min(BATCH_CHUNK, remaining)
        remaining -= BATCH_CHUNK


@dataclass(frozen=True)
class EnvelopeStack:
    """LB_Keogh envelopes of a candidate stack, one row per candidate."""

    lower: np.ndarray  # shape (k, n)
    upper: np.ndarray  # shape (k, n)
    radius: int

    @property
    def n_candidates(self) -> int:
        return self.lower.shape[0]

    @property
    def length(self) -> int:
        return self.lower.shape[1]


def _as_matrix(candidates: np.ndarray, context: str) -> np.ndarray:
    matrix = np.asarray(candidates, dtype=np.float64)
    if matrix.ndim != 2:
        raise DistanceError(f"{context} requires a 2-D candidate stack")
    if matrix.shape[1] == 0:
        raise DistanceError(f"{context} requires non-empty candidates")
    return matrix


def sliding_minmax(values: np.ndarray, radius: int) -> tuple[np.ndarray, np.ndarray]:
    """Boundary-clipped sliding ``(min, max)`` of a 1-D sequence.

    ``lower[i] = min(values[i-r .. i+r])`` and ``upper[i]`` its max, the
    window clipped at the edges — identical to the scalar envelope but
    computed as one windowed reduction over a padded view.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise DistanceError("sliding_minmax requires a non-empty 1-D sequence")
    radius = int(radius)
    if radius < 0:
        raise DistanceError(f"sliding radius must be >= 0, got {radius}")
    if radius == 0:
        return values.copy(), values.copy()
    window = 2 * radius + 1
    lower = sliding_window_view(
        np.pad(values, radius, constant_values=_INF), window
    ).min(axis=-1)
    upper = sliding_window_view(
        np.pad(values, radius, constant_values=-_INF), window
    ).max(axis=-1)
    return lower, upper


def envelope_matrix(candidates: np.ndarray, radius: int) -> EnvelopeStack:
    """Envelopes of every row of a ``(k, n)`` candidate stack at once."""
    matrix = _as_matrix(candidates, "envelope_matrix")
    radius = int(radius)
    if radius < 0:
        raise DistanceError(f"envelope radius must be >= 0, got {radius}")
    if radius == 0:
        return EnvelopeStack(lower=matrix.copy(), upper=matrix.copy(), radius=0)
    window = 2 * radius + 1
    pad = ((0, 0), (radius, radius))
    lower = sliding_window_view(
        np.pad(matrix, pad, constant_values=_INF), window, axis=1
    ).min(axis=-1)
    upper = sliding_window_view(
        np.pad(matrix, pad, constant_values=-_INF), window, axis=1
    ).max(axis=-1)
    return EnvelopeStack(lower=lower, upper=upper, radius=radius)


def kim_features(
    matrix: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The per-row LB_Kim ingredients: first, last, min, max.

    Single source of the *endpoint logic* of [22]'s LB_Kim: which
    points of a sequence participate in the bound. Every LB_Kim
    implementation (scalar, batch, stacked) draws its features from
    here or mirrors it exactly, so the paths cannot drift.
    """
    return (
        matrix[:, 0],
        matrix[:, -1],
        matrix.min(axis=1),
        matrix.max(axis=1),
    )


def kim_combine(
    boundary_sq: np.ndarray | float,
    max_diff: np.ndarray | float,
    min_diff: np.ndarray | float,
) -> np.ndarray | float:
    """Combine the LB_Kim terms into the bound (shared by all paths).

    ``max(sqrt(boundary_sq), |max - max|, |min - min|)`` — the single
    source of the term combination, so the scalar
    :func:`repro.distances.lower_bounds.lb_kim`, :func:`lb_kim_batch`
    and :func:`lb_kim_stacked` agree bit for bit.
    """
    return np.maximum(np.sqrt(boundary_sq), np.maximum(max_diff, min_diff))


def lb_kim_batch(query: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """LB_Kim of the query against every row of a candidate stack.

    Vectorized twin of :func:`repro.distances.lower_bounds.lb_kim`:
    boundary-point cost plus global-extrema differences, reduced across
    the stack in a handful of NumPy passes.
    """
    query = np.asarray(query, dtype=np.float64)
    if query.ndim != 1 or query.size == 0:
        raise DistanceError("lb_kim_batch requires a non-empty 1-D query")
    matrix = _as_matrix(candidates, "lb_kim_batch")
    first, last, minima, maxima = kim_features(matrix)
    boundary_sq = (first - query[0]) ** 2 + (last - query[-1]) ** 2
    max_diff = np.abs(maxima - query.max())
    min_diff = np.abs(minima - query.min())
    return kim_combine(boundary_sq, max_diff, min_diff)


def lb_keogh_batch(
    candidates: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> np.ndarray:
    """LB_Keogh of every candidate row against one (query) envelope."""
    matrix = _as_matrix(candidates, "lb_keogh_batch")
    if matrix.shape[1] != lower.shape[0]:
        raise LengthMismatchError(
            matrix.shape[1], lower.shape[0], context="LB_Keogh batch"
        )
    above = np.maximum(matrix - upper[None, :], 0.0)
    below = np.maximum(lower[None, :] - matrix, 0.0)
    return np.sqrt(
        np.einsum("ij,ij->i", above, above) + np.einsum("ij,ij->i", below, below)
    )


def lb_keogh_reverse_batch(query: np.ndarray, stack: EnvelopeStack) -> np.ndarray:
    """Reversed LB_Keogh: the query against each candidate's envelope."""
    query = np.asarray(query, dtype=np.float64)
    if query.shape[0] != stack.length:
        raise LengthMismatchError(
            query.shape[0], stack.length, context="reversed LB_Keogh batch"
        )
    above = np.maximum(query[None, :] - stack.upper, 0.0)
    below = np.maximum(stack.lower - query[None, :], 0.0)
    return np.sqrt(
        np.einsum("ij,ij->i", above, above) + np.einsum("ij,ij->i", below, below)
    )


def dtw_batch(
    query: np.ndarray,
    candidates: np.ndarray,
    radius: int,
    abandon_above: float | None = None,
) -> np.ndarray:
    """Banded DTW of the query against every row of a candidate stack.

    One DP row advances across all surviving candidates at a time: the
    band columns are shared (all candidates have equal length), so each
    band cell costs one vectorized min/add over the stack instead of a
    Python-level iteration per candidate. ``abandon_above`` is a shared
    early-abandon bound on the *distance*: a candidate whose entire DP
    row exceeds it can never finish below the bound (the DP is
    monotone), so it is compacted out of the stack mid-flight; its
    result is ``inf``, exactly like the scalar kernel's.

    Returns the per-candidate DTW distances (``inf`` where abandoned or
    where the band leaves the final cell unreachable).

    Dispatches to the active kernel backend
    (:mod:`repro.distances.backend`); the numpy reference below is the
    default, the ``numba`` backend runs per-lane nopython DPs with the
    same float64 operation order (bit-identical results).
    """
    query = np.asarray(query, dtype=np.float64)
    if query.ndim != 1 or query.size == 0:
        raise DistanceError("dtw_batch requires a non-empty 1-D query")
    matrix = _as_matrix(candidates, "dtw_batch")
    radius = int(radius)
    if radius < 0:
        raise DistanceError(f"band radius must be >= 0, got {radius}")
    if matrix.shape[0] == 0:
        return np.full(0, _INF)
    return get_backend().dtw_batch(query, matrix, radius, abandon_above)


def _dtw_batch_numpy(
    query: np.ndarray,
    matrix: np.ndarray,
    radius: int,
    abandon_above: float | None = None,
) -> np.ndarray:
    """Numpy-backend kernel behind :func:`dtw_batch` (pre-validated args)."""
    k, m = matrix.shape
    n = query.shape[0]
    out = np.full(k, _INF)
    if k == 0:
        return out
    bound_sq = _INF if abandon_above is None else float(abandon_above) ** 2
    bounded = bound_sq < _INF

    # Column-major DP layout: row ``j`` of the ``(m+1, k)`` arrays is the
    # DP column ``j`` across all candidates, contiguous in memory. Per DP
    # row, the local squared costs and the min of the two previous-row
    # predecessors are computed for the whole band in three vector ops;
    # the remaining per-cell work is two allocation-free vector ops (the
    # ``left`` same-row dependency forces that serialization). The
    # ``left`` neighbor needs no separate buffer: the row is re-filled
    # with inf, so ``current[j-1]`` already reads as the freshly written
    # in-band neighbor and +inf at the band's edge.
    columns = np.ascontiguousarray(matrix.T)  # (m, k)
    alive = np.arange(k)
    previous = np.full((m + 1, k), _INF)
    previous[0] = 0.0
    current = np.full((m + 1, k), _INF)
    width = min(2 * radius + 1, m)
    best = np.empty(k)
    cost = np.empty((width, k))
    shifted = np.empty((width, k))
    row_min = np.empty(k)
    for i in range(1, n + 1):
        j_start, j_stop = band_bounds(i, n, m, radius)
        # No full re-fill needed: the band's center is non-decreasing in
        # ``i``, so any column right of this row's band was never written
        # in either buffer (still inf from init) and any column left of
        # ``j_start - 1`` is never read again. Only the left edge may
        # hold a stale value from two rows ago.
        current[j_start - 1].fill(_INF)
        w = j_stop - j_start + 1
        band_cost = cost[:w]
        np.subtract(columns[j_start - 1 : j_stop], query[i - 1], out=band_cost)
        np.multiply(band_cost, band_cost, out=band_cost)
        band_shifted = shifted[:w]
        np.minimum(
            previous[j_start - 1 : j_stop],
            previous[j_start : j_stop + 1],
            out=band_shifted,
        )
        for t in range(w):
            j = j_start + t
            np.minimum(band_shifted[t], current[j - 1], out=best)
            np.add(best, band_cost[t], out=current[j])
        if bounded:
            np.minimum.reduce(current[j_start : j_stop + 1], axis=0, out=row_min)
            keep = row_min <= bound_sq
            survivors = int(keep.sum())
            if survivors == 0:
                return out
            # Compacting the stack costs a copy of every array; only
            # worth it when enough candidates died at once.
            if survivors <= alive.shape[0] // 2:
                alive = alive[keep]
                columns = np.ascontiguousarray(columns[:, keep])
                current = np.ascontiguousarray(current[:, keep])
                previous = np.ascontiguousarray(previous[:, keep])
                size = alive.shape[0]
                best = np.empty(size)
                cost = np.empty((width, size))
                shifted = np.empty((width, size))
                row_min = np.empty(size)
        previous, current = current, previous
    finished = previous[m]
    done = finished <= bound_sq
    out[alive[done]] = np.sqrt(finished[done])
    return out


def _as_query_matrix(queries: np.ndarray, context: str) -> np.ndarray:
    matrix = np.asarray(queries, dtype=np.float64)
    if matrix.ndim != 2:
        raise DistanceError(f"{context} requires a 2-D query stack")
    if matrix.shape[1] == 0:
        raise DistanceError(f"{context} requires non-empty queries")
    return matrix


def lb_kim_stacked(queries: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """LB_Kim of every query against every candidate, as one matrix.

    The ``(n_queries, n_candidates)`` twin of :func:`lb_kim_batch`:
    boundary-point cost plus global-extrema differences, broadcast
    across both stacks at once. Row ``q`` equals
    ``lb_kim_batch(queries[q], candidates)`` bit for bit.
    """
    q_matrix = _as_query_matrix(queries, "lb_kim_stacked")
    matrix = _as_matrix(candidates, "lb_kim_stacked")
    first, last, minima, maxima = kim_features(matrix)
    q_first, q_last, q_minima, q_maxima = kim_features(q_matrix)
    boundary_sq = (first[None, :] - q_first[:, None]) ** 2 + (
        last[None, :] - q_last[:, None]
    ) ** 2
    max_diff = np.abs(maxima[None, :] - q_maxima[:, None])
    min_diff = np.abs(minima[None, :] - q_minima[:, None])
    return kim_combine(boundary_sq, max_diff, min_diff)


#: Cap on the transient ``(queries, candidates, length)`` float64
#: broadcast inside the stacked reversed LB_Keogh. The kernel chunks
#: its query axis so peak memory stays near this bound however large
#: the batch — identical results, bounded RSS for a long-lived server.
STACKED_LB_TEMP_BYTES = 32 * 1024 * 1024


def lb_keogh_reverse_stacked(
    queries: np.ndarray, stack: EnvelopeStack
) -> np.ndarray:
    """Reversed LB_Keogh of every query against every candidate envelope.

    The ``(n_queries, n_candidates)`` twin of
    :func:`lb_keogh_reverse_batch`; row ``q`` equals the batch kernel's
    result for ``queries[q]`` bit for bit. Computed in query-axis
    chunks sized to :data:`STACKED_LB_TEMP_BYTES` so the dense 3-D
    broadcast never balloons with the batch size.
    """
    q_matrix = _as_query_matrix(queries, "lb_keogh_reverse_stacked")
    if q_matrix.shape[1] != stack.length:
        raise LengthMismatchError(
            q_matrix.shape[1], stack.length, context="reversed LB_Keogh stacked"
        )
    n_queries = q_matrix.shape[0]
    per_query = 2 * stack.n_candidates * stack.length * 8  # above + below
    rows = max(1, min(n_queries, STACKED_LB_TEMP_BYTES // max(per_query, 1)))
    out = np.empty((n_queries, stack.n_candidates))
    for start in range(0, n_queries, rows):
        block = q_matrix[start : start + rows]
        above = np.maximum(block[:, None, :] - stack.upper[None, :, :], 0.0)
        below = np.maximum(stack.lower[None, :, :] - block[:, None, :], 0.0)
        out[start : start + rows] = np.sqrt(
            np.einsum("ijk,ijk->ij", above, above)
            + np.einsum("ijk,ijk->ij", below, below)
        )
    return out


def dtw_pairs(
    queries: np.ndarray,
    candidates: np.ndarray,
    radius: int,
    abandon_above: np.ndarray | float | None = None,
) -> np.ndarray:
    """Banded DTW of row-aligned ``(query, candidate)`` pairs.

    Lane ``p`` computes ``dtw(queries[p], candidates[p])`` with band
    radius ``radius``; all queries share one length and all candidates
    another, so the band geometry — and therefore the whole DP schedule
    — is shared and the Python-level row loop is paid once for the
    entire pair stack. ``abandon_above`` may be a scalar shared bound or
    a per-pair array; lanes whose entire DP row exceeds their bound are
    compacted out mid-flight and report ``inf``, exactly like
    :func:`dtw_batch` (whose per-lane arithmetic this reproduces bit
    for bit). Dispatches to the active kernel backend, exactly like
    :func:`dtw_batch`.
    """
    q_matrix = _as_query_matrix(queries, "dtw_pairs")
    matrix = _as_matrix(candidates, "dtw_pairs")
    if q_matrix.shape[0] != matrix.shape[0]:
        raise DistanceError(
            f"dtw_pairs requires aligned stacks, got {q_matrix.shape[0]} "
            f"queries for {matrix.shape[0]} candidates"
        )
    radius = int(radius)
    if radius < 0:
        raise DistanceError(f"band radius must be >= 0, got {radius}")
    if matrix.shape[0] == 0:
        return np.full(0, _INF)
    return get_backend().dtw_pairs(q_matrix, matrix, radius, abandon_above)


def _dtw_pairs_numpy(
    q_matrix: np.ndarray,
    matrix: np.ndarray,
    radius: int,
    abandon_above: np.ndarray | float | None = None,
) -> np.ndarray:
    """Numpy-backend kernel behind :func:`dtw_pairs` (pre-validated args)."""
    k, m = matrix.shape
    n = q_matrix.shape[1]
    out = np.full(k, _INF)
    if k == 0:
        return out
    if abandon_above is None:
        bound_sq = np.full(k, _INF)
        bounded = False
    else:
        bound_sq = np.broadcast_to(
            np.asarray(abandon_above, dtype=np.float64) ** 2, (k,)
        ).copy()
        bounded = bool(np.isfinite(bound_sq).any())

    # Same column-major layout and in-band update as dtw_batch; the only
    # difference is that the per-row cost subtracts a per-lane query
    # value instead of one scalar, and the abandon test compares each
    # lane's row minimum against its own bound.
    columns = np.ascontiguousarray(matrix.T)  # (m, k)
    rows = np.ascontiguousarray(q_matrix.T)  # (n, k)
    alive = np.arange(k)
    previous = np.full((m + 1, k), _INF)
    previous[0] = 0.0
    current = np.full((m + 1, k), _INF)
    width = min(2 * radius + 1, m)
    best = np.empty(k)
    cost = np.empty((width, k))
    shifted = np.empty((width, k))
    row_min = np.empty(k)
    for i in range(1, n + 1):
        j_start, j_stop = band_bounds(i, n, m, radius)
        current[j_start - 1].fill(_INF)
        w = j_stop - j_start + 1
        band_cost = cost[:w]
        np.subtract(columns[j_start - 1 : j_stop], rows[i - 1], out=band_cost)
        np.multiply(band_cost, band_cost, out=band_cost)
        band_shifted = shifted[:w]
        np.minimum(
            previous[j_start - 1 : j_stop],
            previous[j_start : j_stop + 1],
            out=band_shifted,
        )
        for t in range(w):
            j = j_start + t
            np.minimum(band_shifted[t], current[j - 1], out=best)
            np.add(best, band_cost[t], out=current[j])
        if bounded:
            np.minimum.reduce(current[j_start : j_stop + 1], axis=0, out=row_min)
            keep = row_min <= bound_sq
            survivors = int(keep.sum())
            if survivors == 0:
                return out
            if survivors <= alive.shape[0] // 2:
                alive = alive[keep]
                bound_sq = bound_sq[keep]
                columns = np.ascontiguousarray(columns[:, keep])
                rows = np.ascontiguousarray(rows[:, keep])
                current = np.ascontiguousarray(current[:, keep])
                previous = np.ascontiguousarray(previous[:, keep])
                size = alive.shape[0]
                best = np.empty(size)
                cost = np.empty((width, size))
                shifted = np.empty((width, size))
                row_min = np.empty(size)
        previous, current = current, previous
    finished = previous[m]
    done = finished <= bound_sq
    out[alive[done]] = np.sqrt(finished[done])
    return out
