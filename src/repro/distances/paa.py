"""Piecewise Aggregate Approximation (PAA) and PDTW.

PAA [17, 19] reduces a sequence of length ``n`` to ``M`` segment means.
The paper's PAA baseline is Keogh & Pazzani's *Scaling up DTW* [19]:
run DTW on the PAA-reduced sequences (PDTW), trading accuracy for an
``(n/M)^2`` speedup. :func:`paa_distance` additionally provides the
classic ED lower bound on the reduced representation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distances.dtw import dtw
from repro.exceptions import DistanceError


def paa_transform(x: np.ndarray, n_segments: int) -> np.ndarray:
    """Reduce ``x`` to ``n_segments`` segment means.

    Segment boundaries follow the fractional scheme ``[k*n/M, (k+1)*n/M)``
    so any ``n_segments <= n`` works, divisible or not.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise DistanceError("paa_transform requires a non-empty 1-D sequence")
    n = x.shape[0]
    n_segments = int(n_segments)
    if not 1 <= n_segments <= n:
        raise DistanceError(
            f"n_segments must be in [1, {n}] for a length-{n} sequence, got {n_segments}"
        )
    if n_segments == n:
        return x.copy()
    boundaries = (np.arange(n_segments + 1) * n) // n_segments
    return np.array(
        [x[boundaries[k] : boundaries[k + 1]].mean() for k in range(n_segments)]
    )


def paa_distance(x: np.ndarray, y: np.ndarray, n_segments: int) -> float:
    """Weighted ED between PAA representations: a lower bound of ED(x, y).

    ``sqrt(sum_k s_k * (PAA(x)_k - PAA(y)_k)^2)`` with ``s_k`` the size
    of segment ``k`` — the Keogh et al. [17] bound generalized to the
    fractional segmentation (for divisible lengths this reduces to the
    classic ``sqrt(n/M) * ED(PAA(x), PAA(y))``). Admissible for any
    segmentation by Cauchy-Schwarz within each segment. Requires equal
    lengths.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape[0] != y.shape[0]:
        raise DistanceError("paa_distance requires equal-length sequences")
    px = paa_transform(x, n_segments)
    py = paa_transform(y, n_segments)
    boundaries = (np.arange(int(n_segments) + 1) * x.shape[0]) // int(n_segments)
    sizes = np.diff(boundaries).astype(np.float64)
    return math.sqrt(float(np.dot(sizes, (px - py) ** 2)))


def pdtw(
    x: np.ndarray,
    y: np.ndarray,
    segment_size: int = 4,
    window: int | float | None = None,
) -> float:
    """Piecewise DTW [19]: DTW on the PAA-reduced sequences.

    Each sequence is reduced by a factor of ``segment_size`` (sequences
    shorter than one segment stay intact); the reduced DTW is scaled by
    ``sqrt(segment_size)`` to approximate the original-resolution value,
    matching the per-cell aggregation of c squared differences.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    segment_size = int(segment_size)
    if segment_size < 1:
        raise DistanceError(f"segment_size must be >= 1, got {segment_size}")
    mx = max(1, x.shape[0] // segment_size)
    my = max(1, y.shape[0] // segment_size)
    reduced_x = paa_transform(x, mx)
    reduced_y = paa_transform(y, my)
    return math.sqrt(segment_size) * dtw(reduced_x, reduced_y, window=window)
