"""Edit distance with Real Penalty (ERP).

ERP [6] ("On the marriage of Lp-norms and edit distance" — the paper the
ONEX title winks at) is an elastic distance that, unlike DTW, is a
metric: gaps are penalized against a constant reference value ``g``. It
is provided as a related-work extra for users who need triangle-
inequality guarantees from the distance itself.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DistanceError


def erp(x: np.ndarray, y: np.ndarray, g: float = 0.0) -> float:
    """ERP distance with gap value ``g`` (L1 formulation of [6]).

    ``ERP(x, y) = min over alignments of sum(|x_i - y_j|)`` where either
    element may instead be aligned to a gap at cost ``|element - g|``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim != 1 or y.ndim != 1 or x.size == 0 or y.size == 0:
        raise DistanceError("erp requires two non-empty 1-D sequences")
    n, m = x.shape[0], y.shape[0]
    gap_x = np.abs(x - g)  # cost of deleting each x element
    gap_y = np.abs(y - g)  # cost of deleting each y element
    previous = np.concatenate(([0.0], np.cumsum(gap_y)))
    for i in range(1, n + 1):
        current = np.empty(m + 1)
        current[0] = previous[0] + gap_x[i - 1]
        xi = x[i - 1]
        for j in range(1, m + 1):
            match = previous[j - 1] + abs(xi - y[j - 1])
            delete_x = previous[j] + gap_x[i - 1]
            delete_y = current[j - 1] + gap_y[j - 1]
            current[j] = min(match, delete_x, delete_y)
        previous = current
    return float(previous[m])
