"""Pluggable kernel backends for the refinement hot path (ISSUE 5).

PRs 1-4 vectorized the scan and batched the serving layer, which left
per-candidate *refinement* — the banded DTW row sweep and the scalar
cascade stages — as the dominant cost. Those kernels are pure
arithmetic over small float64 arrays, exactly the shape a JIT compiler
eats for breakfast, so this module makes the kernel implementation a
pluggable **backend**:

* the ``numpy`` backend binds the existing kernels (the exact
  reference: the scalar DP of :mod:`repro.distances.dtw` and the
  row-synchronized batch DPs of :mod:`repro.distances.batch`);
* the ``numba`` backend (:mod:`repro.distances.kernels_numba`) provides
  nopython implementations of the same kernels with the **same float64
  operation order**, so both backends return bit-identical distances
  (asserted by ``tests/test_backend.py``). The import is guarded: when
  ``numba`` is not installed, requesting it falls back to ``numpy``
  with a warning instead of failing.

Selection, in priority order:

1. an explicit :func:`set_backend` call (the CLI's ``onex --backend``);
2. the ``ONEX_KERNEL_BACKEND`` environment variable;
3. ``auto`` — ``numba`` when importable, ``numpy`` otherwise.

The resolved backend is cached process-wide; :func:`set_backend` with
``None`` drops the cache so the environment is re-read (tests use
this). Backends are *stateless* kernel tables — swapping them never
changes results, only speed.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from dataclasses import dataclass
from collections.abc import Callable

from repro.exceptions import DistanceError

#: Environment variable consulted when no backend was set explicitly.
ENV_VAR = "ONEX_KERNEL_BACKEND"


@dataclass(frozen=True)
class KernelBackend:
    """A table of refinement kernels sharing one calling convention.

    All kernels receive pre-validated contiguous ``float64`` arrays (the
    public wrappers in :mod:`repro.distances.dtw` /
    :mod:`repro.distances.batch` own validation) and operate on the
    *squared* scale where noted:

    ``dtw_squared(x, y, radius, bound_sq)``
        Banded early-abandoning DP; returns the squared DTW or ``inf``.
    ``lb_kim(x, y)``
        LB_Kim on the distance scale.
    ``lb_keogh_squared(values, lower, upper, order, bound_sq)``
        Sum of squared excursions of ``values`` outside the corridor.
        ``order`` is the visit order over positions (the cascade passes
        the query's descending-``|z|`` order so JIT backends abandon
        after the large terms); once the running sum provably reaches
        ``bound_sq`` the kernel may return any partial sum ``>=
        bound_sq``. Vectorized backends may ignore both hints — the
        full sum satisfies the contract.
    ``dtw_batch(query, matrix, radius, abandon_above)``
        Per-row DTW distances of one query against a candidate stack
        (``inf`` where abandoned); shared scalar bound or ``None``.
    ``dtw_pairs(queries, matrix, radius, abandon_above)``
        Row-aligned pair lanes with a scalar/per-lane/absent bound.
    ``build_assign(windows, window_rows, sq_norms, order, threshold)``
        Optional construction kernel (ISSUE 7): one length's entire
        Algorithm-1 assignment pass — shortlist, exact recheck,
        running-sum admit/refresh — over the store's strided window
        matrix, returning ``(assign, sums, counts)``. ``None`` means
        the backend has no fused build kernel and the construction
        engine (:class:`repro.core.grouping.GroupBuilder`) runs its
        vectorized numpy path instead; the decisions are identical
        either way (the build-kernel bit-identity contract, asserted
        by ``tests/test_build_kernels.py``).
    """

    name: str
    jit: bool
    dtw_squared: Callable[..., float]
    lb_kim: Callable[..., float]
    lb_keogh_squared: Callable[..., float]
    dtw_batch: Callable[..., "object"]
    dtw_pairs: Callable[..., "object"]
    build_assign: Callable[..., "object"] | None = None
    compile_kernels: Callable[[], None] | None = None

    def warmup(self) -> float:
        """Compile/exercise every kernel now; returns elapsed seconds.

        For JIT backends this front-loads compilation so the first real
        query doesn't eat it; for ``numpy`` it is effectively free. The
        serving layer calls this at startup and reports the time.
        """
        started = time.perf_counter()
        if self.compile_kernels is not None:
            self.compile_kernels()
        return time.perf_counter() - started


def _numpy_backend() -> KernelBackend:
    # Late imports: dtw/batch/lower_bounds import this module at load
    # time, so the factory must not run at import time (it runs on the
    # first get_backend() call, when everything is initialized).
    from repro.distances.batch import _dtw_batch_numpy, _dtw_pairs_numpy
    from repro.distances.dtw import _dtw_squared
    from repro.distances.lower_bounds import (
        _lb_keogh_squared_numpy,
        _lb_kim_numpy,
    )

    return KernelBackend(
        name="numpy",
        jit=False,
        dtw_squared=_dtw_squared,
        lb_kim=_lb_kim_numpy,
        lb_keogh_squared=_lb_keogh_squared_numpy,
        dtw_batch=_dtw_batch_numpy,
        dtw_pairs=_dtw_pairs_numpy,
        compile_kernels=None,
    )


def _numba_backend() -> KernelBackend | None:
    try:
        from repro.distances import kernels_numba
    except ImportError:  # pragma: no cover - defensive
        return None
    if not kernels_numba.NUMBA_AVAILABLE:
        return None
    return kernels_numba.make_backend()


_FACTORIES: dict[str, Callable[[], KernelBackend | None]] = {
    "numpy": _numpy_backend,
    "numba": _numba_backend,
}
_instances: dict[str, KernelBackend] = {}
_lock = threading.Lock()
_active: KernelBackend | None = None
_warned_fallback = False


def register_backend(
    name: str, factory: Callable[[], KernelBackend | None]
) -> None:
    """Register a backend factory (returns ``None`` when unavailable)."""
    with _lock:
        _FACTORIES[name.lower()] = factory
        _instances.pop(name.lower(), None)


def available_backends() -> dict[str, bool]:
    """Registered backend names mapped to availability right now."""
    return {name: _build(name) is not None for name in _FACTORIES}


def _build(name: str) -> KernelBackend | None:
    if name in _instances:
        return _instances[name]
    factory = _FACTORIES.get(name)
    if factory is None:
        return None
    backend = factory()
    if backend is not None:
        _instances[name] = backend
    return backend


def resolve_backend(name: str | None = None) -> KernelBackend:
    """Resolve a backend spec to an instance, with graceful fallback.

    ``None`` consults ``ONEX_KERNEL_BACKEND`` and defaults to ``auto``.
    ``auto`` prefers ``numba`` when importable. Asking for ``numba``
    without the package installed warns once and returns ``numpy`` — a
    numpy-only environment must keep working unchanged.
    """
    global _warned_fallback
    spec = (name or os.environ.get(ENV_VAR) or "auto").strip().lower()
    if spec == "auto":
        backend = _build("numba")
        return backend if backend is not None else _build("numpy")
    if spec not in _FACTORIES:
        known = ", ".join(sorted(_FACTORIES))
        raise DistanceError(
            f"unknown kernel backend {spec!r}; known: auto, {known}"
        )
    backend = _build(spec)
    if backend is None:
        if not _warned_fallback:
            _warned_fallback = True
            warnings.warn(
                f"kernel backend {spec!r} is unavailable (is the package "
                "installed?); falling back to the exact numpy backend",
                RuntimeWarning,
                stacklevel=2,
            )
        return _build("numpy")
    return backend


def get_backend() -> KernelBackend:
    """The process-wide active backend (resolved once, then cached)."""
    global _active
    backend = _active
    if backend is None:
        with _lock:
            if _active is None:
                _active = resolve_backend()
            backend = _active
    return backend


def set_backend(name: str | None) -> KernelBackend:
    """Select the active backend by name; ``None`` re-reads the env."""
    global _active
    with _lock:
        _active = None if name is None else resolve_backend(name)
    return get_backend()
