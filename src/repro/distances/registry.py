"""Name-based lookup of distance functions (used by the CLI and tests)."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.distances.dtw import dtw, normalized_dtw
from repro.distances.edr import normalized_edr
from repro.distances.erp import erp
from repro.distances.euclidean import euclidean, normalized_euclidean
from repro.distances.lcss import lcss_distance
from repro.distances.paa import pdtw
from repro.exceptions import DistanceError

DistanceFn = Callable[[np.ndarray, np.ndarray], float]

DISTANCES: dict[str, DistanceFn] = {
    "ed": euclidean,
    "ed_norm": normalized_euclidean,
    "dtw": dtw,
    "dtw_norm": normalized_dtw,
    "pdtw": pdtw,
    "lcss": lcss_distance,
    "erp": erp,
    "edr": normalized_edr,
}


def get_distance(name: str) -> DistanceFn:
    """Return the distance function registered under ``name``.

    Lookup is case-insensitive; unknown names raise
    :class:`~repro.exceptions.DistanceError` listing the alternatives.
    """
    key = name.strip().lower()
    if key in DISTANCES:
        return DISTANCES[key]
    known = ", ".join(sorted(DISTANCES))
    raise DistanceError(f"unknown distance {name!r}; known distances: {known}")
