"""Numba nopython kernels for the refinement hot path (optional).

The refinement kernels — banded early-abandoning DTW, LB_Kim, the
reordered early-abandoning LB_Keogh accumulation, and the per-lane
batch/pair DPs — are tight float64 loops over short arrays: the numpy
reference pays either a Python-interpreter round trip per DP cell (the
scalar kernel) or a ufunc dispatch per band row (the batch kernels).
The JIT versions here compile to straight-line machine code and remove
both costs.

**Bit-identity contract.** Every kernel reproduces the numpy
reference's float64 operation order exactly — same cost expression
``best + diff * diff``, same three-way predecessor minimum, same
abandon comparisons — and compiles *without* ``fastmath`` (which would
license reassociation). ``tests/test_backend.py`` asserts equality
against the reference on random and adversarial inputs; the batch
kernels are per-lane loops of the scalar DP, which agrees with the
row-synchronized numpy sweep because each lane's arithmetic is
independent of its neighbours.

The ``numba`` import is guarded: when the package is missing,
``NUMBA_AVAILABLE`` is ``False``, ``njit`` degrades to a no-op
decorator (so this module still imports cleanly for introspection) and
the backend registry never hands this backend out.
"""

from __future__ import annotations

import math

import numpy as np

try:
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised via the registry
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # noqa: ARG001 - signature mirror
        """Identity decorator standing in for an absent numba."""

        def decorate(func):
            return func

        if args and callable(args[0]):
            return args[0]
        return decorate


_INF = math.inf


@njit(cache=True)
def _dtw_squared_jit(x, y, radius, bound_sq):
    """Banded DP over squared costs; mirrors ``dtw._dtw_squared``.

    Two rolling rows are swapped instead of reallocated; the band is
    non-decreasing in ``i`` (``center = (i * m) // n``), so the only
    position a swap could leave stale — the cell just left of the band,
    read as ``previous[j_start - 1]`` one row later — is re-filled with
    ``inf`` every row, exactly like the numpy batch kernels do.
    """
    n = x.shape[0]
    m = y.shape[0]
    previous = np.full(m + 1, _INF)
    previous[0] = 0.0
    current = np.full(m + 1, _INF)
    for i in range(1, n + 1):
        center = (i * m) // n
        j_start = center - radius
        if j_start < 1:
            j_start = 1
        j_stop = center + radius
        if j_stop > m:
            j_stop = m
        current[j_start - 1] = _INF
        xi = x[i - 1]
        row_min = _INF
        left = _INF  # D[i][0] is unreachable for every i >= 1
        for j in range(j_start, j_stop + 1):
            best = previous[j - 1]
            up = previous[j]
            if up < best:
                best = up
            if left < best:
                best = left
            if best == _INF:
                value = _INF
            else:
                diff = xi - y[j - 1]
                value = best + diff * diff
            current[j] = value
            left = value
            if value < row_min:
                row_min = value
        if row_min > bound_sq:
            return _INF
        previous, current = current, previous
    result = previous[m]
    if result > bound_sq:
        return _INF
    return result


@njit(cache=True)
def _lb_kim_jit(x, y):
    """LB_Kim with the same term order as the numpy reference."""
    n = x.shape[0]
    m = y.shape[0]
    x_min = x[0]
    x_max = x[0]
    for i in range(1, n):
        v = x[i]
        if v < x_min:
            x_min = v
        if v > x_max:
            x_max = v
    y_min = y[0]
    y_max = y[0]
    for i in range(1, m):
        v = y[i]
        if v < y_min:
            y_min = v
        if v > y_max:
            y_max = v
    boundary_sq = (x[0] - y[0]) ** 2 + (x[-1] - y[-1]) ** 2
    bound = math.sqrt(boundary_sq)
    max_diff = abs(x_max - y_max)
    if max_diff > bound:
        bound = max_diff
    min_diff = abs(x_min - y_min)
    if min_diff > bound:
        bound = min_diff
    return bound


@njit(cache=True)
def _lb_keogh_sq_jit(values, lower, upper, order, bound_sq):
    """Reordered, early-abandoning LB_Keogh squared accumulation.

    Visits positions in ``order`` (the cascade passes descending
    ``|z|`` of the query, after [22]) so the big excursions land first
    and the running sum crosses ``bound_sq`` as early as possible. The
    partial sum returned on abandon is itself a valid lower bound of
    the full sum, so the caller's ``>= bound_sq`` prune decision is
    identical to the full computation's.
    """
    total = 0.0
    for idx in range(order.shape[0]):
        i = order[idx]
        v = values[i]
        hi = upper[i]
        if v > hi:
            d = v - hi
            total += d * d
        else:
            lo = lower[i]
            if v < lo:
                d = lo - v
                total += d * d
        if total >= bound_sq:
            return total
    return total


@njit(cache=True)
def _dtw_batch_sq_jit(query, candidates, radius, bound_sq, out):
    """Per-lane scalar DP over a candidate stack (shared bound)."""
    for p in range(candidates.shape[0]):
        out[p] = _dtw_squared_jit(query, candidates[p], radius, bound_sq)


@njit(cache=True)
def _dtw_pairs_sq_jit(queries, candidates, radius, bounds_sq, out):
    """Per-lane scalar DP over row-aligned pairs (per-lane bounds)."""
    for p in range(queries.shape[0]):
        out[p] = _dtw_squared_jit(
            queries[p], candidates[p], radius, bounds_sq[p]
        )


def _c64(values: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.float64)


def dtw_squared(x, y, radius, bound_sq) -> float:
    return float(_dtw_squared_jit(_c64(x), _c64(y), int(radius), float(bound_sq)))


def lb_kim(x, y) -> float:
    return float(_lb_kim_jit(_c64(x), _c64(y)))


def lb_keogh_squared(values, lower, upper, order, bound_sq) -> float:
    return float(
        _lb_keogh_sq_jit(
            _c64(values),
            _c64(lower),
            _c64(upper),
            np.ascontiguousarray(order, dtype=np.intp),
            float(bound_sq),
        )
    )


def dtw_batch(query, matrix, radius, abandon_above) -> np.ndarray:
    bound_sq = _INF if abandon_above is None else float(abandon_above) ** 2
    out = np.empty(matrix.shape[0])
    _dtw_batch_sq_jit(_c64(query), _c64(matrix), int(radius), bound_sq, out)
    return np.sqrt(out)


def dtw_pairs(queries, matrix, radius, abandon_above) -> np.ndarray:
    k = matrix.shape[0]
    if abandon_above is None:
        bounds_sq = np.full(k, _INF)
    else:
        # Same prep as the numpy kernel: square first, then broadcast.
        bounds_sq = np.ascontiguousarray(
            np.broadcast_to(
                np.asarray(abandon_above, dtype=np.float64) ** 2, (k,)
            )
        )
    out = np.empty(k)
    _dtw_pairs_sq_jit(_c64(queries), _c64(matrix), int(radius), bounds_sq, out)
    return np.sqrt(out)


def compile_kernels() -> None:
    """Force-compile every jitted kernel on tiny inputs (warm path)."""
    x = np.array([0.0, 1.0, 0.5, 0.25])
    y = np.array([0.5, 0.0, 1.0, 0.75])
    order = np.argsort(-np.abs(x), kind="stable").astype(np.intp)
    dtw_squared(x, y, 1, _INF)
    dtw_squared(x, y, 0, 1.0)
    lb_kim(x, y)
    lb_keogh_squared(x, y - 1.0, y + 1.0, order, _INF)
    stack = np.stack([y, x])
    dtw_batch(x, stack, 1, None)
    dtw_batch(x, stack, 1, 0.5)
    dtw_pairs(stack, np.stack([x, y]), 1, None)
    dtw_pairs(stack, np.stack([x, y]), 1, np.array([0.5, _INF]))


def make_backend():
    """Build the ``numba`` :class:`~repro.distances.backend.KernelBackend`."""
    from repro.distances.backend import KernelBackend

    return KernelBackend(
        name="numba",
        jit=True,
        dtw_squared=dtw_squared,
        lb_kim=lb_kim,
        lb_keogh_squared=lb_keogh_squared,
        dtw_batch=dtw_batch,
        dtw_pairs=dtw_pairs,
        compile_kernels=compile_kernels,
    )
