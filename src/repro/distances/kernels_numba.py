"""Numba nopython kernels for the refinement and construction hot paths.

The refinement kernels — banded early-abandoning DTW, LB_Kim, the
reordered early-abandoning LB_Keogh accumulation, and the per-lane
batch/pair DPs — are tight float64 loops over short arrays: the numpy
reference pays either a Python-interpreter round trip per DP cell (the
scalar kernel) or a ufunc dispatch per band row (the batch kernels).
The JIT versions here compile to straight-line machine code and remove
both costs. The **construction kernel** (:func:`build_assign`, ISSUE 7)
fuses one length's entire Algorithm-1 assignment pass — per-row
shortlist matvec, exact recheck, running-sum admit/refresh — into one
nopython loop with ``prange`` intra-length parallelism over snapshot
chunks, eliminating the ~10 numpy dispatches the vectorized engine
pays per visited subsequence.

**Bit-identity contract.** Every kernel reproduces the numpy
reference's float64 operation order exactly — same cost expression
``best + diff * diff``, same three-way predecessor minimum, same
abandon comparisons — and compiles *without* ``fastmath`` (which would
license reassociation). ``tests/test_backend.py`` asserts equality
against the reference on random and adversarial inputs; the batch
kernels are per-lane loops of the scalar DP, which agrees with the
row-synchronized numpy sweep because each lane's arithmetic is
independent of its neighbours.

The ``numba`` import is guarded: when the package is missing,
``NUMBA_AVAILABLE`` is ``False``, ``njit`` degrades to a no-op
decorator (so this module still imports cleanly for introspection) and
the backend registry never hands this backend out.
"""

from __future__ import annotations

import math

import numpy as np

try:
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised via the registry
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # noqa: ARG001 - signature mirror
        """Identity decorator standing in for an absent numba."""

        def decorate(func):
            return func

        if args and callable(args[0]):
            return args[0]
        return decorate

    #: Sequential stand-in so the pure-Python kernel bodies stay
    #: executable (the property tests exercise them without numba).
    prange = range


_INF = math.inf


@njit(cache=True)
def _dtw_squared_jit(x, y, radius, bound_sq):
    """Banded DP over squared costs; mirrors ``dtw._dtw_squared``.

    Two rolling rows are swapped instead of reallocated; the band is
    non-decreasing in ``i`` (``center = (i * m) // n``), so the only
    position a swap could leave stale — the cell just left of the band,
    read as ``previous[j_start - 1]`` one row later — is re-filled with
    ``inf`` every row, exactly like the numpy batch kernels do.
    """
    n = x.shape[0]
    m = y.shape[0]
    previous = np.full(m + 1, _INF)
    previous[0] = 0.0
    current = np.full(m + 1, _INF)
    for i in range(1, n + 1):
        center = (i * m) // n
        j_start = center - radius
        if j_start < 1:
            j_start = 1
        j_stop = center + radius
        if j_stop > m:
            j_stop = m
        current[j_start - 1] = _INF
        xi = x[i - 1]
        row_min = _INF
        left = _INF  # D[i][0] is unreachable for every i >= 1
        for j in range(j_start, j_stop + 1):
            best = previous[j - 1]
            up = previous[j]
            if up < best:
                best = up
            if left < best:
                best = left
            if best == _INF:
                value = _INF
            else:
                diff = xi - y[j - 1]
                value = best + diff * diff
            current[j] = value
            left = value
            if value < row_min:
                row_min = value
        if row_min > bound_sq:
            return _INF
        previous, current = current, previous
    result = previous[m]
    if result > bound_sq:
        return _INF
    return result


@njit(cache=True)
def _lb_kim_jit(x, y):
    """LB_Kim with the same term order as the numpy reference."""
    n = x.shape[0]
    m = y.shape[0]
    x_min = x[0]
    x_max = x[0]
    for i in range(1, n):
        v = x[i]
        if v < x_min:
            x_min = v
        if v > x_max:
            x_max = v
    y_min = y[0]
    y_max = y[0]
    for i in range(1, m):
        v = y[i]
        if v < y_min:
            y_min = v
        if v > y_max:
            y_max = v
    boundary_sq = (x[0] - y[0]) ** 2 + (x[-1] - y[-1]) ** 2
    bound = math.sqrt(boundary_sq)
    max_diff = abs(x_max - y_max)
    if max_diff > bound:
        bound = max_diff
    min_diff = abs(x_min - y_min)
    if min_diff > bound:
        bound = min_diff
    return bound


@njit(cache=True)
def _lb_keogh_sq_jit(values, lower, upper, order, bound_sq):
    """Reordered, early-abandoning LB_Keogh squared accumulation.

    Visits positions in ``order`` (the cascade passes descending
    ``|z|`` of the query, after [22]) so the big excursions land first
    and the running sum crosses ``bound_sq`` as early as possible. The
    partial sum returned on abandon is itself a valid lower bound of
    the full sum, so the caller's ``>= bound_sq`` prune decision is
    identical to the full computation's.
    """
    total = 0.0
    for idx in range(order.shape[0]):
        i = order[idx]
        v = values[i]
        hi = upper[i]
        if v > hi:
            d = v - hi
            total += d * d
        else:
            lo = lower[i]
            if v < lo:
                d = lo - v
                total += d * d
        if total >= bound_sq:
            return total
    return total


@njit(cache=True)
def _dtw_batch_sq_jit(query, candidates, radius, bound_sq, out):
    """Per-lane scalar DP over a candidate stack (shared bound)."""
    for p in range(candidates.shape[0]):
        out[p] = _dtw_squared_jit(query, candidates[p], radius, bound_sq)


@njit(cache=True)
def _dtw_pairs_sq_jit(queries, candidates, radius, bounds_sq, out):
    """Per-lane scalar DP over row-aligned pairs (per-lane bounds)."""
    for p in range(queries.shape[0]):
        out[p] = _dtw_squared_jit(
            queries[p], candidates[p], radius, bounds_sq[p]
        )


# ----------------------------------------------------------------------
# Construction kernels (ISSUE 7): the Algorithm-1 assignment pass
# ----------------------------------------------------------------------
#: Visit positions processed per snapshot chunk of the build kernel.
DEFAULT_BUILD_CHUNK = 256

#: Upper bound on snapshot-matrix elements (`chunk x n_groups` float64
#: distances); 1 << 22 elements = 32 MB. Chunks shrink to fit.
DEFAULT_SNAPSHOT_BUDGET = 1 << 22


@njit(cache=True, parallel=True)
def _build_assign_jit(
    windows, window_rows, sq_norms, order, threshold, chunk, snapshot_budget
):
    """One length's full Algorithm-1 assignment pass, fused.

    Mirrors ``RepresentativeSet.nearest_sequential`` + ``admit`` /
    ``new_group`` (repro.core.grouping): per visited subsequence, a
    norm shortlist (``||r||^2 - 2 r.s + ||s||^2`` against the squared
    threshold plus the same floating-point slack) prunes
    representatives that provably cannot pass the admission test, the
    survivors are measured with the exact difference norm, and the
    first-index argmin either joins its group (running-sum admit +
    representative refresh, elementwise exactly like the numpy engine)
    or seeds a new one.

    **Intra-length parallelism** comes from optimistic snapshotting:
    the visit order is processed in chunks, and each chunk first
    computes — in parallel over its rows (``prange``) — the exact
    distance of every row to every representative *as of the chunk
    start* (``inf`` where the shortlist pruned). The serial sweep that
    follows replays Algorithm 1's strict visit order: for groups
    untouched since the snapshot the precomputed distance is already
    the exact value the sequential loop would compute; groups admitted
    into (or created) within the chunk are recomputed serially. The
    admitted group per row is therefore **exactly** the sequential
    algorithm's choice — parallelism never changes a decision, only
    where the distance arithmetic runs.

    Returns ``(assign, sums, counts, n_groups)`` where ``assign[t]`` is
    the group index admitted for visit position ``t`` and
    ``sums``/``counts`` are the final running-sum state (the exact
    quantities ``SimilarityGroup.finalize`` divides).
    """
    n = order.shape[0]
    length = windows.shape[1]
    threshold_sq = threshold * threshold
    cap = 64
    sums = np.zeros((cap, length))
    reps = np.zeros((cap, length))
    rep_sq = np.zeros(cap)
    counts = np.zeros(cap, np.int64)
    touched = np.full(cap, -1, np.int64)
    assign = np.empty(n, np.int64)
    n_groups = 0
    chunk_id = 0
    pos = 0
    while pos < n:
        width = chunk
        if n_groups > 0:
            fit = snapshot_budget // n_groups
            if fit < 1:
                fit = 1
            if width > fit:
                width = fit
        if width > n - pos:
            width = n - pos
        snap_groups = n_groups
        snap = np.full((width, snap_groups), _INF)
        for t in prange(width):
            row = order[pos + t]
            w_row = window_rows[row]
            value_sq = sq_norms[row]
            limit = threshold_sq + 1e-9 * (1.0 + value_sq)
            for g in range(snap_groups):
                cross = 0.0
                for j in range(length):
                    cross += reps[g, j] * windows[w_row, j]
                approx_sq = rep_sq[g] - 2.0 * cross + value_sq
                if approx_sq <= limit:
                    total = 0.0
                    for j in range(length):
                        diff = reps[g, j] - windows[w_row, j]
                        total += diff * diff
                    snap[t, g] = math.sqrt(total)
        for t in range(width):
            row = order[pos + t]
            w_row = window_rows[row]
            best = _INF
            best_g = -1
            for g in range(n_groups):
                if g < snap_groups and touched[g] != chunk_id:
                    d = snap[t, g]
                else:
                    total = 0.0
                    for j in range(length):
                        diff = reps[g, j] - windows[w_row, j]
                        total += diff * diff
                    d = math.sqrt(total)
                if d < best:
                    best = d
                    best_g = g
            if best_g >= 0 and best <= threshold:
                g = best_g
                counts[g] += 1
                count = counts[g]
                sq = 0.0
                for j in range(length):
                    s = sums[g, j] + windows[w_row, j]
                    sums[g, j] = s
                    r = s / count
                    reps[g, j] = r
                    sq += r * r
                rep_sq[g] = sq
            else:
                if n_groups == cap:
                    new_cap = cap * 2
                    new_sums = np.zeros((new_cap, length))
                    new_sums[:cap] = sums
                    sums = new_sums
                    new_reps = np.zeros((new_cap, length))
                    new_reps[:cap] = reps
                    reps = new_reps
                    new_rep_sq = np.zeros(new_cap)
                    new_rep_sq[:cap] = rep_sq
                    rep_sq = new_rep_sq
                    new_counts = np.zeros(new_cap, np.int64)
                    new_counts[:cap] = counts
                    counts = new_counts
                    new_touched = np.full(new_cap, -1, np.int64)
                    new_touched[:cap] = touched
                    touched = new_touched
                    cap = new_cap
                g = n_groups
                sq = 0.0
                for j in range(length):
                    v = windows[w_row, j]
                    sums[g, j] = v
                    reps[g, j] = v
                    sq += v * v
                rep_sq[g] = sq
                counts[g] = 1
                n_groups += 1
            touched[g] = chunk_id
            assign[pos + t] = g
        chunk_id += 1
        pos += width
    return assign, sums[:n_groups], counts[:n_groups], n_groups


def build_assign(
    windows,
    window_rows,
    sq_norms,
    order,
    threshold,
    chunk: int = DEFAULT_BUILD_CHUNK,
    snapshot_budget: int = DEFAULT_SNAPSHOT_BUDGET,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One length's Algorithm-1 assignment; the registry's build kernel.

    ``windows`` is the store's strided sliding-window matrix (never
    copied or made contiguous — it may alias a read-only mmap) and row
    ``r``'s values live at ``windows[window_rows[r]]``. Returns
    ``(assign, sums, counts)``: per-visit-position group index plus the
    final running-sum state.
    """
    windows = np.asarray(windows)
    if windows.dtype != np.float64:
        windows = windows.astype(np.float64)
    assign, sums, counts, _ = _build_assign_jit(
        windows,
        np.ascontiguousarray(window_rows, dtype=np.int64),
        _c64(sq_norms),
        np.ascontiguousarray(order, dtype=np.int64),
        float(threshold),
        int(chunk),
        int(snapshot_budget),
    )
    return assign, sums, counts


def _c64(values: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.float64)


def dtw_squared(x, y, radius, bound_sq) -> float:
    return float(_dtw_squared_jit(_c64(x), _c64(y), int(radius), float(bound_sq)))


def lb_kim(x, y) -> float:
    return float(_lb_kim_jit(_c64(x), _c64(y)))


def lb_keogh_squared(values, lower, upper, order, bound_sq) -> float:
    return float(
        _lb_keogh_sq_jit(
            _c64(values),
            _c64(lower),
            _c64(upper),
            np.ascontiguousarray(order, dtype=np.intp),
            float(bound_sq),
        )
    )


def dtw_batch(query, matrix, radius, abandon_above) -> np.ndarray:
    bound_sq = _INF if abandon_above is None else float(abandon_above) ** 2
    out = np.empty(matrix.shape[0])
    _dtw_batch_sq_jit(_c64(query), _c64(matrix), int(radius), bound_sq, out)
    return np.sqrt(out)


def dtw_pairs(queries, matrix, radius, abandon_above) -> np.ndarray:
    k = matrix.shape[0]
    if abandon_above is None:
        bounds_sq = np.full(k, _INF)
    else:
        # Same prep as the numpy kernel: square first, then broadcast.
        bounds_sq = np.ascontiguousarray(
            np.broadcast_to(
                np.asarray(abandon_above, dtype=np.float64) ** 2, (k,)
            )
        )
    out = np.empty(k)
    _dtw_pairs_sq_jit(_c64(queries), _c64(matrix), int(radius), bounds_sq, out)
    return np.sqrt(out)


def compile_kernels() -> None:
    """Force-compile every jitted kernel on tiny inputs (warm path)."""
    x = np.array([0.0, 1.0, 0.5, 0.25])
    y = np.array([0.5, 0.0, 1.0, 0.75])
    order = np.argsort(-np.abs(x), kind="stable").astype(np.intp)
    dtw_squared(x, y, 1, _INF)
    dtw_squared(x, y, 0, 1.0)
    lb_kim(x, y)
    lb_keogh_squared(x, y - 1.0, y + 1.0, order, _INF)
    stack = np.stack([y, x])
    dtw_batch(x, stack, 1, None)
    dtw_batch(x, stack, 1, 0.5)
    dtw_pairs(stack, np.stack([x, y]), 1, None)
    dtw_pairs(stack, np.stack([x, y]), 1, np.array([0.5, _INF]))
    windows = np.stack([x, y, x + 0.5, y - 0.5])
    rows = np.arange(windows.shape[0], dtype=np.int64)
    sq = np.empty(windows.shape[0])
    for i in range(windows.shape[0]):
        sq[i] = float(np.dot(windows[i], windows[i]))
    build_assign(windows, rows, sq, rows, 0.75, chunk=2)


def make_backend():
    """Build the ``numba`` :class:`~repro.distances.backend.KernelBackend`."""
    from repro.distances.backend import KernelBackend

    return KernelBackend(
        name="numba",
        jit=True,
        dtw_squared=dtw_squared,
        lb_kim=lb_kim,
        lb_keogh_squared=lb_keogh_squared,
        dtw_batch=dtw_batch,
        dtw_pairs=dtw_pairs,
        build_assign=build_assign,
        compile_kernels=compile_kernels,
    )
