"""Exception hierarchy for the ONEX reproduction.

Every error raised by this package derives from :class:`OnexError`, so
callers can catch one base class. Subclasses mirror the major subsystems:
data handling, distance computation, index construction and querying.
"""

from __future__ import annotations


class OnexError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DataError(OnexError):
    """Invalid time series or dataset input (shape, dtype, emptiness)."""


class LengthMismatchError(DataError):
    """Two sequences were required to have equal length but do not."""

    def __init__(self, n: int, m: int, context: str = "") -> None:
        detail = f" ({context})" if context else ""
        super().__init__(f"sequence lengths differ: {n} != {m}{detail}")
        self.n = n
        self.m = m


class DistanceError(OnexError):
    """A distance computation received invalid parameters."""


class IndexConstructionError(OnexError):
    """The ONEX base could not be constructed from the given inputs."""


class QueryError(OnexError):
    """An online query was malformed or could not be answered."""


class ThresholdError(OnexError):
    """An invalid similarity threshold was supplied."""

    def __init__(self, st: float, reason: str = "must be positive") -> None:
        super().__init__(f"invalid similarity threshold {st!r}: {reason}")
        self.st = st


class ParseError(OnexError):
    """The ONEX query language parser rejected the input text."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class PersistenceError(OnexError):
    """An ONEX base could not be saved to or loaded from disk."""
