"""ASCII/Unicode plotting primitives for the terminal.

The paper's ONEX is an *interactive* system; in a terminal-only
environment the closest equivalent of its charts is unicode block
plotting. These helpers are intentionally dependency-free and are used
by the examples and the ``render_*`` explainers.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError
from repro.utils.validation import as_float_array

_BLOCKS = "▁▂▃▄▅▆▇█"


def _resample(values: np.ndarray, width: int) -> np.ndarray:
    """Pick ``width`` evenly spaced samples (all values if they fit)."""
    if len(values) <= width:
        return values
    positions = np.linspace(0, len(values) - 1, width).round().astype(int)
    return values[positions]


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """One-line unicode sparkline of a sequence.

    Flat sequences render as a run of the lowest block rather than
    dividing by a zero range.
    """
    values = as_float_array(values, "values")
    if width < 1:
        raise DataError(f"width must be >= 1, got {width}")
    values = _resample(values, width)
    low, high = float(values.min()), float(values.max())
    span = high - low
    if span == 0:
        return _BLOCKS[0] * len(values)
    indices = ((values - low) / span * (len(_BLOCKS) - 1)).round().astype(int)
    return "".join(_BLOCKS[i] for i in indices)


def line_plot(
    values: np.ndarray,
    width: int = 60,
    height: int = 10,
    label: str = "",
) -> str:
    """Multi-row ASCII line plot with a value axis.

    Each column shows a ``*`` at the sample's height; the left margin
    carries the max/min values so magnitudes stay readable.
    """
    values = as_float_array(values, "values")
    if width < 1 or height < 2:
        raise DataError("width must be >= 1 and height >= 2")
    sampled = _resample(values, width)
    low, high = float(sampled.min()), float(sampled.max())
    span = (high - low) or 1.0
    rows = [[" "] * len(sampled) for _ in range(height)]
    for column, value in enumerate(sampled):
        row = int(round((value - low) / span * (height - 1)))
        rows[height - 1 - row][column] = "*"
    lines = []
    if label:
        lines.append(label)
    for index, row in enumerate(rows):
        if index == 0:
            margin = f"{high:8.3f} |"
        elif index == height - 1:
            margin = f"{low:8.3f} |"
        else:
            margin = " " * 8 + " |"
        lines.append(margin + "".join(row))
    lines.append(" " * 9 + "+" + "-" * len(sampled))
    return "\n".join(lines)


def overlay_plot(
    first: np.ndarray,
    second: np.ndarray,
    width: int = 60,
    height: int = 10,
    labels: tuple[str, str] = ("a", "b"),
) -> str:
    """Two sequences on one ASCII canvas (``*`` and ``o``, ``@`` overlap).

    Useful for eyeballing a query against its retrieved match; both
    sequences share one value scale so offsets stay visible.
    """
    first = as_float_array(first, "first")
    second = as_float_array(second, "second")
    if width < 1 or height < 2:
        raise DataError("width must be >= 1 and height >= 2")
    a = _resample(first, width)
    b = _resample(second, width)
    columns = max(len(a), len(b))
    low = min(float(a.min()), float(b.min()))
    high = max(float(a.max()), float(b.max()))
    span = (high - low) or 1.0
    rows = [[" "] * columns for _ in range(height)]

    def paint(values: np.ndarray, glyph: str) -> None:
        for column, value in enumerate(values):
            row = height - 1 - int(round((value - low) / span * (height - 1)))
            current = rows[row][column]
            rows[row][column] = "@" if current not in (" ", glyph) else glyph

    paint(a, "*")
    paint(b, "o")
    lines = [f"*={labels[0]}  o={labels[1]}  @=both"]
    for index, row in enumerate(rows):
        if index == 0:
            margin = f"{high:8.3f} |"
        elif index == height - 1:
            margin = f"{low:8.3f} |"
        else:
            margin = " " * 8 + " |"
        lines.append(margin + "".join(row))
    lines.append(" " * 9 + "+" + "-" * columns)
    return "\n".join(lines)
