"""Terminal visualization for interactive exploration sessions."""

from repro.viz.ascii import sparkline, line_plot, overlay_plot
from repro.viz.explain import render_match, render_group, render_warping_path

__all__ = [
    "sparkline",
    "line_plot",
    "overlay_plot",
    "render_match",
    "render_group",
    "render_warping_path",
]
