"""Human-readable renderings of ONEX result objects."""

from __future__ import annotations

import numpy as np

from repro.core.onex import OnexIndex
from repro.core.results import Match
from repro.distances.dtw import dtw_path
from repro.viz.ascii import overlay_plot, sparkline


def render_match(query: np.ndarray, match: Match, width: int = 60) -> str:
    """Query vs retrieved match, overlaid, with the distance header."""
    header = (
        f"match {match.ssid} (group G{match.group[0]}.{match.group[1]}): "
        f"DTW={match.dtw:.4f} DTW/2n={match.dtw_normalized:.5f}"
    )
    body = overlay_plot(
        np.asarray(query, dtype=float),
        match.values,
        width=width,
        labels=("query", "match"),
    )
    return header + "\n" + body


def render_group(index: OnexIndex, length: int, group_index: int, width: int = 50) -> str:
    """A similarity group: its representative plus member sparklines."""
    bucket = index.rspace.bucket(length)
    group = bucket.group_of(group_index)
    lines = [
        f"group G{length}.{group_index}: {group.count} members, "
        f"max ED to representative {group.ed_to_rep.max():.4f}",
        f"  rep     {sparkline(group.representative, width)}",
    ]
    for ssid in group.member_ids[:8]:
        values = index.dataset.subsequence(ssid)
        lines.append(f"  {str(ssid):10} {sparkline(values, width)}")
    if group.count > 8:
        lines.append(f"  ... {group.count - 8} more member(s)")
    return "\n".join(lines)


def render_warping_path(
    x: np.ndarray,
    y: np.ndarray,
    window: int | float | None = None,
    max_size: int = 40,
) -> str:
    """The optimal DTW alignment as an ASCII matrix (``#`` on the path).

    Sequences longer than ``max_size`` are rejected rather than silently
    subsampled — the path of a subsampled pair is not the path of the
    originals.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) > max_size or len(y) > max_size:
        raise ValueError(
            f"sequences longer than {max_size} do not fit an ASCII matrix; "
            "slice them first"
        )
    path = set(dtw_path(x, y, window=window))
    lines = [f"warping path: x (rows, n={len(x)}) vs y (cols, m={len(y)})"]
    for i in range(len(x)):
        row = "".join("#" if (i, j) in path else "." for j in range(len(y)))
        lines.append(row)
    return "\n".join(lines)
