"""Benchmark harness: workloads, accuracy metric, contexts and reporting."""

from repro.bench.accuracy import accuracy_percent, retrieval_errors
from repro.bench.datasets import BENCH_CONFIGS, BenchConfig, bench_dataset
from repro.bench.workloads import QuerySpec, Workload, make_workload
from repro.bench.runner import BenchContext, get_context, clear_context_cache
from repro.bench.reporting import ReportRegistry, format_table, registry

__all__ = [
    "accuracy_percent",
    "retrieval_errors",
    "BENCH_CONFIGS",
    "BenchConfig",
    "bench_dataset",
    "QuerySpec",
    "Workload",
    "make_workload",
    "BenchContext",
    "get_context",
    "clear_context_cache",
    "ReportRegistry",
    "format_table",
    "registry",
]
