"""Rendering paper-style tables/series and collecting them for pytest.

Benchmarks register their result tables with the module-level
:data:`registry`; the ``benchmarks/conftest.py`` hook prints everything
in the pytest terminal summary (which is never swallowed by output
capture) and also writes ``benchmarks/results/<name>.txt`` plus a
machine-readable ``<name>.json`` (title/headers/rows) so the rows
survive the run and CI can upload them as artifacts for the perf
trajectory.
"""

from __future__ import annotations

import contextlib
import json
import os
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence


def _json_cell(value: object) -> object:
    """Coerce a table cell to a *strictly valid* JSON value.

    NumPy scalars expose ``item()``; non-finite floats become strings
    (``json.dump`` would otherwise emit bare ``NaN``/``Infinity``
    tokens that strict parsers reject); anything else non-primitive
    falls back to its string form.
    """
    item = getattr(value, "item", None)
    if callable(item):
        with contextlib.suppress(TypeError, ValueError):
            value = item()
    if isinstance(value, float) and (value != value or value in (
        float("inf"), float("-inf")
    )):
        return str(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.5f}"
    return str(value)


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an ASCII table with a title rule, suitable for the terminal."""
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class ReportRegistry:
    """Accumulates experiment tables during a benchmark session."""

    _tables: list[tuple[str, str]] = field(default_factory=list)
    output_dir: str | None = None

    def add_table(
        self,
        name: str,
        title: str,
        headers: Sequence[str],
        rows: Sequence[Sequence[object]],
    ) -> str:
        """Register (and return) a rendered table under a unique name."""
        rendered = format_table(title, headers, rows)
        self._tables = [(n, t) for n, t in self._tables if n != name]
        self._tables.append((name, rendered))
        if self.output_dir:
            os.makedirs(self.output_dir, exist_ok=True)
            path = os.path.join(self.output_dir, f"{name}.txt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(rendered + "\n")
            payload = {
                "name": name,
                "title": title,
                "headers": list(headers),
                "rows": [[_json_cell(cell) for cell in row] for row in rows],
            }
            json_path = os.path.join(self.output_dir, f"{name}.json")
            with open(json_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1, allow_nan=False)
        return rendered

    def render_all(self, write_line: Callable[[str], None]) -> None:
        """Emit every registered table through ``write_line``."""
        if not self._tables:
            return
        write_line("")
        write_line("=" * 72)
        write_line("ONEX reproduction: paper tables and figures (this run)")
        write_line("=" * 72)
        for _, rendered in self._tables:
            write_line("")
            for line in rendered.splitlines():
                write_line(line)

    def clear(self) -> None:
        self._tables.clear()

    def __len__(self) -> int:
        return len(self._tables)


#: Shared registry used by the benchmark suite.
registry = ReportRegistry()
