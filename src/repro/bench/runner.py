"""Benchmark contexts: shared built systems + cached ground truth.

A :class:`BenchContext` bundles everything one dataset's experiments
need — the normalized dataset with the workload's holdout removed, the
built ONEX index, the three prepared baselines, and lazily computed
exact ground-truth distances (brute-force Standard DTW) for both the
any-length and same-length retrieval problems.

Contexts are cached per dataset in the process, so the ground truth is
paid for once even though several benchmark files consume it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import SearchMethod
from repro.baselines.brute_force import StandardDTW
from repro.baselines.paa_search import PAASearch
from repro.baselines.trillion import Trillion
from repro.bench.datasets import BENCH_CONFIGS, BenchConfig, bench_dataset
from repro.bench.workloads import Workload, make_workload
from repro.core.onex import OnexIndex
from repro.core.query_processor import QueryProcessor


@dataclass
class MethodRun:
    """Outcome of running the 20-query workload through one system."""

    name: str
    per_query_seconds: list[float]
    distances: list[float]  # normalized DTW of each retrieved solution

    @property
    def mean_seconds(self) -> float:
        return float(np.mean(self.per_query_seconds))

    @property
    def total_seconds(self) -> float:
        return float(np.sum(self.per_query_seconds))


@dataclass
class BenchContext:
    """All systems and cached results for one benchmark dataset."""

    config: BenchConfig
    workload: Workload
    index: OnexIndex
    brute: StandardDTW
    paa: PAASearch
    trillion: Trillion
    _exact_any: list[float] | None = field(default=None, repr=False)
    _exact_same: list[float] | None = field(default=None, repr=False)
    _runs: dict[str, MethodRun] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Ground truth (lazy; this is the expensive part)
    # ------------------------------------------------------------------
    @property
    def exact_any(self) -> list[float]:
        """Exact any-length best-match distances (brute force)."""
        if self._exact_any is None:
            self._exact_any = [
                self.brute.best_match(q.values).dtw_normalized
                for q in self.workload.queries
            ]
        return self._exact_any

    @property
    def exact_same(self) -> list[float]:
        """Exact same-length best-match distances (brute force)."""
        if self._exact_same is None:
            self._exact_same = [
                self.brute.best_match(q.values, length=q.length).dtw_normalized
                for q in self.workload.queries
            ]
        return self._exact_same

    # ------------------------------------------------------------------
    # Workload runners (cached per system + matching mode)
    # ------------------------------------------------------------------
    def run_onex(self, same_length: bool = False) -> MethodRun:
        """Run all queries through ONEX (Any, or restricted to the query length)."""
        key = "ONEX-S" if same_length else "ONEX"
        if key not in self._runs:
            seconds: list[float] = []
            distances: list[float] = []
            for query in self.workload.queries:
                started = time.perf_counter()
                matches = self.index.query(
                    query.values,
                    length=query.length if same_length else None,
                )
                seconds.append(time.perf_counter() - started)
                distances.append(matches[0].dtw_normalized)
            self._runs[key] = MethodRun(key, seconds, distances)
        return self._runs[key]

    def run_baseline(
        self, method: SearchMethod, same_length: bool = False
    ) -> MethodRun:
        """Run all queries through one baseline system."""
        key = f"{method.name}{'-S' if same_length else ''}"
        if key not in self._runs:
            seconds: list[float] = []
            distances: list[float] = []
            for query in self.workload.queries:
                started = time.perf_counter()
                result = method.best_match(
                    query.values,
                    length=query.length if same_length else None,
                )
                seconds.append(time.perf_counter() - started)
                distances.append(result.dtw_normalized)
            self._runs[key] = MethodRun(key, seconds, distances)
        return self._runs[key]

    def make_processor(self, **kwargs) -> QueryProcessor:
        """A query processor over this context's R-Space with overrides.

        Used by the ablation benches to toggle the §5.3 optimizations
        without rebuilding the base.
        """
        defaults = dict(
            st=self.index.st,
            window=self.index.window,
        )
        defaults.update(kwargs)
        return QueryProcessor(self.index.rspace, self.index.dataset, **defaults)


_CONTEXTS: dict[str, BenchContext] = {}


def build_context(config: BenchConfig, workload_seed: int = 99) -> BenchContext:
    """Construct a context (dataset, workload, index, baselines) for a config."""
    dataset = bench_dataset(config)
    workload = make_workload(dataset, config.lengths, seed=workload_seed)
    index = OnexIndex.build(
        workload.indexed,
        st=config.st,
        lengths=list(config.lengths),
        start_step=config.start_step,
        window=config.window,
        seed=config.seed,
        normalize=False,  # bench datasets are normalized up front (§6.1)
    )
    brute = StandardDTW(window=config.window)
    paa = PAASearch(window=config.window)
    trillion = Trillion(window=config.window)
    for method in (brute, paa, trillion):
        method.prepare(workload.indexed, config.lengths, start_step=config.start_step)
    return BenchContext(
        config=config,
        workload=workload,
        index=index,
        brute=brute,
        paa=paa,
        trillion=trillion,
    )


def get_context(name: str) -> BenchContext:
    """The cached context for one of the paper's datasets."""
    if name not in _CONTEXTS:
        _CONTEXTS[name] = build_context(BENCH_CONFIGS[name])
    return _CONTEXTS[name]


def clear_context_cache() -> None:
    """Drop every cached context (used by tests)."""
    _CONTEXTS.clear()
