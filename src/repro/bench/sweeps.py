"""Shared parameter sweeps (cached) behind Figs. 5, 6, 7 and 8.

Fig. 5 (construction time vs ST) and Fig. 6 (number of representatives
vs ST) read the same threshold sweep; Figs. 7/8 (accuracy vs time
trade-off) rebuild the index per ST and re-run the query workload. Both
sweeps cache per dataset so the two bench files that consume each sweep
only pay for it once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.accuracy import accuracy_percent
from repro.bench.runner import BenchContext, get_context
from repro.core.onex import OnexIndex

#: The ST grid of Figs. 5/6 (the paper plots 0.1 .. 1.0).
CONSTRUCTION_ST_GRID: tuple[float, ...] = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)

#: The ST grid of Figs. 7/8 (the paper plots 0.1 .. 0.4).
TRADEOFF_ST_GRID: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4)


@dataclass(frozen=True)
class ConstructionPoint:
    """One point of the Fig. 5 / Fig. 6 threshold sweep."""

    st: float
    build_seconds: float
    n_representatives: int
    n_subsequences: int
    size_mb: float


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the Fig. 7/8 accuracy-vs-time sweep."""

    st: float
    accuracy: float
    mean_query_seconds: float
    build_seconds: float


_CONSTRUCTION: dict[str, list[ConstructionPoint]] = {}
_TRADEOFF: dict[str, list[TradeoffPoint]] = {}


def _build_at(context: BenchContext, st: float) -> OnexIndex:
    """Build a fresh index over the context's data at threshold ``st``."""
    config = context.config
    return OnexIndex.build(
        context.workload.indexed,
        st=st,
        lengths=list(config.lengths),
        start_step=config.start_step,
        window=config.window,
        seed=config.seed,
        normalize=False,
    )


def construction_sweep(
    dataset: str, st_grid: tuple[float, ...] = CONSTRUCTION_ST_GRID
) -> list[ConstructionPoint]:
    """Offline construction sweep over ST (Figs. 5 and 6), cached."""
    if dataset not in _CONSTRUCTION:
        context = get_context(dataset)
        points = []
        for st in st_grid:
            index = _build_at(context, st)
            stats = index.stats()
            points.append(
                ConstructionPoint(
                    st=st,
                    build_seconds=stats.build_seconds,
                    n_representatives=stats.n_representatives,
                    n_subsequences=stats.n_subsequences,
                    size_mb=stats.size_mb,
                )
            )
        _CONSTRUCTION[dataset] = points
    return _CONSTRUCTION[dataset]


def tradeoff_sweep(
    dataset: str, st_grid: tuple[float, ...] = TRADEOFF_ST_GRID
) -> list[TradeoffPoint]:
    """Accuracy-vs-time sweep over ST (Figs. 7 and 8), cached.

    For each ST the index is rebuilt, the 20-query workload re-run
    (Match = Any) and accuracy measured against the context's cached
    any-length ground truth.
    """
    if dataset not in _TRADEOFF:
        context = get_context(dataset)
        exact = context.exact_any
        query_lengths = [q.length for q in context.workload.queries]
        points = []
        for st in st_grid:
            index = _build_at(context, st)
            distances = []
            seconds = []
            for query in context.workload.queries:
                started = time.perf_counter()
                matches = index.query(query.values)
                seconds.append(time.perf_counter() - started)
                distances.append(matches[0].dtw_normalized)
            points.append(
                TradeoffPoint(
                    st=st,
                    accuracy=accuracy_percent(
                        distances, exact, query_lengths=query_lengths
                    ),
                    mean_query_seconds=sum(seconds) / len(seconds),
                    build_seconds=index.build_seconds,
                )
            )
        _TRADEOFF[dataset] = points
    return _TRADEOFF[dataset]


def clear_sweep_caches() -> None:
    """Drop cached sweeps (used by tests)."""
    _CONSTRUCTION.clear()
    _TRADEOFF.clear()
