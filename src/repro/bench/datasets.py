"""Per-dataset benchmark configurations.

The paper runs on full-size UCR datasets with a C++ implementation; this
pure-Python reproduction scales every dataset down by a comparable
factor so that relative behaviour (who wins, how ratios move with size)
is preserved while the whole suite stays runnable on a laptop — see
DESIGN.md §5. Each config fixes the synthetic generator parameters, the
indexed length grid and the subsequence stride shared by *all* systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.dataset import Dataset
from repro.data.normalize import min_max_normalize_dataset
from repro.data.synthetic import make_dataset


@dataclass(frozen=True)
class BenchConfig:
    """Scaled-down stand-in for one of the paper's datasets."""

    name: str
    n_series: int
    length: int
    lengths: tuple[int, ...]  # indexed subsequence lengths
    start_step: int = 1
    seed: int = 1234
    st: float = 0.2  # the paper's chosen per-dataset threshold (§6.3)
    window: float = 0.1

    def query_lengths(self) -> tuple[int, ...]:
        """Lengths queries are drawn from ("a wide range", §6.2.1)."""
        return self.lengths


#: The six datasets of the main experiments (Fig. 2, 4-8, Tables 1-4).
BENCH_CONFIGS: dict[str, BenchConfig] = {
    "ItalyPower": BenchConfig(
        name="ItalyPower",
        n_series=30,
        length=24,
        lengths=(8, 12, 16, 20, 24),
    ),
    "ECG": BenchConfig(
        name="ECG",
        n_series=20,
        length=64,
        lengths=(16, 24, 32, 40, 48, 64),
    ),
    "Face": BenchConfig(
        name="Face",
        n_series=16,
        length=96,
        lengths=(24, 40, 56, 72, 96),
        start_step=2,
    ),
    "Wafer": BenchConfig(
        name="Wafer",
        n_series=16,
        length=104,
        lengths=(24, 44, 64, 84, 104),
        start_step=2,
    ),
    "Symbols": BenchConfig(
        name="Symbols",
        n_series=12,
        length=128,
        lengths=(32, 56, 80, 104, 128),
        start_step=3,
    ),
    "TwoPattern": BenchConfig(
        name="TwoPattern",
        n_series=12,
        length=128,
        lengths=(32, 56, 80, 104, 128),
        start_step=3,
    ),
}

#: Scalability experiment (Fig. 3): StarLightCurves-like, series length 100.
#: The paper varies N over 1000..5000; scaled here by 10x (see DESIGN.md).
STARLIGHT_N_GRID: tuple[int, ...] = (50, 100, 150, 200)


def starlight_config(n_series: int) -> BenchConfig:
    """Config for one point of the Fig. 3 N-sweep."""
    return BenchConfig(
        name=f"StarLightCurves-{n_series}",
        n_series=n_series,
        length=100,
        lengths=(40, 70, 100),
        start_step=10,
    )


def bench_dataset(config: BenchConfig) -> Dataset:
    """Instantiate and min-max normalize a config's dataset (§6.1)."""
    base_name = config.name.split("-")[0]
    dataset = make_dataset(
        base_name,
        n_series=config.n_series,
        length=config.length,
        seed=config.seed,
    )
    return min_max_normalize_dataset(dataset)
