"""Query workload generation following the paper's §6.2.1 methodology.

Each experiment uses 20 queries per dataset:

* 10 **in-dataset** queries: random subsequences of the indexed series,
  "promoted" to query sequences;
* 10 **outside-of-dataset** queries (after Fu et al. [13]): a random
  series is held out of the dataset before indexing and its
  subsequences act as queries — the best match exists only as a close,
  not exact, match.

Query lengths are spread over the indexed grid "to cover a wide range
from the smallest to the largest length".
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DataError


@dataclass(frozen=True)
class QuerySpec:
    """One benchmark query: the sample values plus provenance."""

    values: np.ndarray
    length: int
    kind: str  # 'in' or 'out'
    source_series: int
    source_start: int


@dataclass(frozen=True)
class Workload:
    """An indexable dataset plus its 20-query workload."""

    indexed: Dataset  # the dataset systems index (holdout removed)
    holdout_series: int  # index of the removed series in the original
    queries: tuple[QuerySpec, ...]

    @property
    def in_queries(self) -> tuple[QuerySpec, ...]:
        return tuple(q for q in self.queries if q.kind == "in")

    @property
    def out_queries(self) -> tuple[QuerySpec, ...]:
        return tuple(q for q in self.queries if q.kind == "out")


def _spread_lengths(lengths: Sequence[int], count: int, rng: np.random.Generator) -> list[int]:
    """``count`` lengths covering the grid from smallest to largest."""
    lengths = sorted(lengths)
    picks = [lengths[int(round(i * (len(lengths) - 1) / max(1, count - 1)))] for i in range(count)]
    rng.shuffle(picks)
    return picks


def _random_subsequence(
    series_values: np.ndarray, length: int, rng: np.random.Generator
) -> int:
    max_start = series_values.shape[0] - length
    if max_start < 0:
        raise DataError(
            f"series of length {series_values.shape[0]} cannot host a "
            f"query of length {length}"
        )
    return int(rng.integers(0, max_start + 1))


def make_workload(
    dataset: Dataset,
    lengths: Sequence[int],
    n_in: int = 10,
    n_out: int = 10,
    seed: int = 99,
) -> Workload:
    """Build the §6.2.1 workload for an (already normalized) dataset.

    Parameters
    ----------
    dataset:
        Normalized dataset; one random series is held out for the
        out-of-dataset queries and the rest become ``Workload.indexed``.
    lengths:
        The indexed length grid queries are drawn from.
    n_in / n_out:
        Number of in-dataset and held-out queries (paper: 10 + 10).
    seed:
        RNG seed so every system sees the identical workload.
    """
    if len(dataset) < 2:
        raise DataError("workload generation requires at least two series")
    rng = np.random.default_rng(seed)
    holdout = int(rng.integers(0, len(dataset)))
    indexed = dataset.without_series(holdout)

    queries: list[QuerySpec] = []
    for length in _spread_lengths(lengths, n_in, rng):
        series_index = int(rng.integers(0, len(indexed)))
        values = indexed[series_index].values
        start = _random_subsequence(values, length, rng)
        queries.append(
            QuerySpec(
                values=values[start : start + length].copy(),
                length=length,
                kind="in",
                source_series=series_index,
                source_start=start,
            )
        )
    holdout_values = dataset[holdout].values
    for length in _spread_lengths(lengths, n_out, rng):
        start = _random_subsequence(holdout_values, length, rng)
        queries.append(
            QuerySpec(
                values=holdout_values[start : start + length].copy(),
                length=length,
                kind="out",
                source_series=holdout,
                source_start=start,
            )
        )
    return Workload(
        indexed=indexed, holdout_series=holdout, queries=tuple(queries)
    )
