"""The paper's accuracy metric (§6.2.1, "Solution Accuracy").

For each query, the *error* of a system is the difference between the
(normalized) DTW of the solution it retrieved and the DTW of the exact
solution found by brute-force Standard DTW. Accuracy is
``(1 - average(error)) * 100``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import DataError


def retrieval_errors(
    system_distances: Sequence[float],
    exact_distances: Sequence[float],
    query_lengths: Sequence[int] | None = None,
) -> np.ndarray:
    """Per-query errors ``system - exact`` (clipped at 0 for round-off).

    A positive error means the system returned a worse-than-optimal
    match; an exact system scores 0 everywhere.

    Distances are on the normalized (Def. 6) scale. With
    ``query_lengths`` given, each error is rescaled by ``2 * length`` —
    the raw-DTW scale at the query's own length, which is the magnitude
    the paper's accuracy percentages are quoted on (its reported errors
    reach ~0.28, far above anything the /2n scale can produce).
    """
    system = np.asarray(system_distances, dtype=np.float64)
    exact = np.asarray(exact_distances, dtype=np.float64)
    if system.shape != exact.shape:
        raise DataError(
            f"got {system.shape[0]} system distances for {exact.shape[0]} exact ones"
        )
    if system.size == 0:
        raise DataError("accuracy requires at least one query")
    errors = np.clip(system - exact, 0.0, None)
    if query_lengths is not None:
        lengths = np.asarray(query_lengths, dtype=np.float64)
        if lengths.shape != errors.shape:
            raise DataError(
                f"got {lengths.shape[0]} query lengths for {errors.shape[0]} errors"
            )
        errors = errors * 2.0 * lengths
    return errors


def accuracy_percent(
    system_distances: Sequence[float],
    exact_distances: Sequence[float],
    query_lengths: Sequence[int] | None = None,
) -> float:
    """``(1 - average(error)) * 100`` — the §6.2.1 accuracy.

    Clamped below at 0 (a pathological system could otherwise go
    negative, which the percentage scale does not represent).
    """
    errors = retrieval_errors(system_distances, exact_distances, query_lengths)
    return float(max(0.0, (1.0 - errors.mean()) * 100.0))
