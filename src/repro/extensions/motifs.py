"""Motif discovery from the ONEX base.

A *motif* is a pattern that recurs across a dataset. ONEX's similarity
groups already are clusters of mutually similar subsequences (Lemma 1),
so the densest, tightest groups are ready-made motif candidates — no
extra scan over the raw data is needed. This module ranks them.

The score favours groups that are (a) large, (b) spread across many
distinct source series (a pattern private to one series is a seasonal
effect, not a dataset motif) and (c) tight around their representative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.onex import OnexIndex
from repro.exceptions import QueryError
from repro.data.timeseries import SubsequenceId


@dataclass(frozen=True)
class Motif:
    """One discovered motif: a recurring shape and its occurrences."""

    length: int
    group_index: int
    representative: np.ndarray
    occurrences: tuple[SubsequenceId, ...]
    n_series: int  # distinct source series covered
    mean_distance: float  # mean normalized ED of occurrences to the shape
    score: float

    def __len__(self) -> int:
        return len(self.occurrences)


def _score(count: int, n_series: int, mean_distance: float, st: float) -> float:
    """Rank motifs: support x spread x tightness.

    ``1 - mean_distance / (st / 2)`` maps the group's tightness onto
    (0, 1]: a group whose members sit on the representative scores 1, a
    group stretched to the admission radius scores ~0.
    """
    tightness = max(0.0, 1.0 - mean_distance / (st / 2.0))
    return count * math.sqrt(n_series) * (0.25 + 0.75 * tightness)


def discover_motifs(
    index: OnexIndex,
    length: int | None = None,
    top_k: int = 5,
    min_occurrences: int = 3,
    min_series: int = 2,
) -> list[Motif]:
    """Top-k recurring patterns in the indexed dataset.

    Parameters
    ----------
    index:
        A built ONEX index.
    length:
        Restrict to motifs of one subsequence length; ``None`` ranks
        across every indexed length.
    top_k:
        Number of motifs returned (highest score first).
    min_occurrences:
        Minimum group size to qualify as recurring.
    min_series:
        Minimum number of distinct source series the motif must span.
        Use 1 to include patterns recurring inside a single series.
    """
    if top_k < 1:
        raise QueryError(f"top_k must be >= 1, got {top_k}")
    if min_occurrences < 2:
        raise QueryError(f"min_occurrences must be >= 2, got {min_occurrences}")
    buckets = (
        [index.rspace.bucket(int(length))]
        if length is not None
        else list(index.rspace)
    )
    motifs: list[Motif] = []
    for bucket in buckets:
        for group_index, group in enumerate(bucket.groups):
            if group.count < min_occurrences:
                continue
            series_covered = {ssid.series for ssid in group.member_ids}
            if len(series_covered) < min_series:
                continue
            mean_distance = float(group.normalized_ed_to_rep().mean())
            motifs.append(
                Motif(
                    length=bucket.length,
                    group_index=group_index,
                    representative=group.representative,
                    occurrences=group.member_ids,
                    n_series=len(series_covered),
                    mean_distance=mean_distance,
                    score=_score(
                        group.count,
                        len(series_covered),
                        mean_distance,
                        index.st,
                    ),
                )
            )
    motifs.sort(key=lambda motif: motif.score, reverse=True)
    return motifs[:top_k]
