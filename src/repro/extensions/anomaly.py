"""Discord (anomaly) detection from the ONEX base.

The mirror image of motif discovery: where motifs are the densest
similarity groups, *discords* are the subsequences the grouping could
not place near anything — members of tiny groups, far from every other
representative. Classic discord discovery scans all pairs; the ONEX
base already encodes the needed neighborhood structure, so ranking is
index-only.

The discord score of a subsequence combines (a) how small its group is
(a singleton has no similar peer at all) and (b) how far its group's
representative sits from the nearest other representative of the same
length (an isolated group is anomalous as a whole).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.onex import OnexIndex
from repro.data.timeseries import SubsequenceId
from repro.exceptions import QueryError


@dataclass(frozen=True)
class Discord:
    """One anomaly candidate: an isolated subsequence."""

    ssid: SubsequenceId
    values: np.ndarray
    group_size: int
    nearest_rep_distance: float  # normalized ED to the nearest other rep
    score: float


def discover_discords(
    index: OnexIndex,
    length: int | None = None,
    top_k: int = 5,
    max_group_size: int = 2,
) -> list[Discord]:
    """Top-k most isolated subsequences in the indexed dataset.

    Parameters
    ----------
    index:
        A built ONEX index.
    length:
        Restrict to one subsequence length; ``None`` ranks across all.
    top_k:
        Number of discords returned, highest score first.
    max_group_size:
        Only members of groups at most this large qualify (discords are
        by definition patterns without many similar peers).
    """
    if top_k < 1:
        raise QueryError(f"top_k must be >= 1, got {top_k}")
    if max_group_size < 1:
        raise QueryError(f"max_group_size must be >= 1, got {max_group_size}")
    buckets = (
        [index.rspace.bucket(int(length))]
        if length is not None
        else list(index.rspace)
    )
    discords: list[Discord] = []
    for bucket in buckets:
        if bucket.n_groups < 2:
            continue  # isolation is undefined with a single group
        # Distance from each group to its nearest *other* group.
        dc = bucket.dc.copy()
        np.fill_diagonal(dc, np.inf)
        nearest_other = dc.min(axis=1)
        for group_index, group in enumerate(bucket.groups):
            if group.count > max_group_size:
                continue
            isolation = float(nearest_other[group_index])
            for ssid in group.member_ids:
                # Smaller groups and more isolated representatives score
                # higher; scores are comparable across lengths because
                # Dc is on the normalized-ED scale.
                score = isolation * (1.0 + 1.0 / group.count)
                discords.append(
                    Discord(
                        ssid=ssid,
                        values=index.dataset.subsequence(ssid),
                        group_size=group.count,
                        nearest_rep_distance=isolation,
                        score=score,
                    )
                )
    discords.sort(key=lambda discord: discord.score, reverse=True)
    return discords[:top_k]
