"""Extensions beyond the paper's §6 evaluation.

The paper's tech report mentions maintenance of the ONEX base, and its
related-work section points at classification and motif-style pattern
discovery as neighbouring problems the index naturally supports. This
package builds those out on top of the public core API:

* :mod:`repro.extensions.maintenance` — append new series to a built
  index without a full rebuild (incremental Algorithm 1);
* :mod:`repro.extensions.classifier` — 1-NN time-series classification
  answered from the index instead of a full DTW scan;
* :mod:`repro.extensions.motifs` — top-k recurring-pattern (motif)
  discovery straight from the similarity groups;
* :mod:`repro.extensions.anomaly` — discord (anomaly) detection: the
  most isolated subsequences, ranked index-only.

A fifth extension lives in the core: ``QueryProcessor(n_probe=p)`` /
``OnexIndex.build(grouping="kmeans")`` — multi-probe search and the
alternative k-means base constructor.
"""

from repro.extensions.maintenance import append_series
from repro.extensions.classifier import OnexKnnClassifier
from repro.extensions.motifs import Motif, discover_motifs
from repro.extensions.anomaly import Discord, discover_discords

__all__ = [
    "append_series",
    "OnexKnnClassifier",
    "Motif",
    "discover_motifs",
    "Discord",
    "discover_discords",
]
