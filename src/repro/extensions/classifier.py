"""1-NN time-series classification answered from the ONEX base.

The nearest-neighbor classifier under DTW is the standard yardstick on
the UCR archive (and the setting of [21] in the paper's related work).
A classic implementation scans the training set per query; here the
ONEX index answers the neighbor search instead, so prediction cost
follows the representative count, not the training-set size.

Only whole-series matches vote: the index is built with the training
series' full length as its single subsequence length.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.core.onex import OnexIndex
from repro.data.dataset import Dataset
from repro.data.timeseries import TimeSeries
from repro.exceptions import DataError, QueryError


class OnexKnnClassifier:
    """k-NN classifier over an ONEX base (default k=1, the UCR standard).

    Parameters
    ----------
    st:
        Similarity threshold for the underlying base.
    k:
        Number of neighbors voting (majority, ties broken by the
        closest neighbor's label).
    window:
        DTW band used for all comparisons.
    n_probe:
        Representative groups probed per query (accuracy/time knob).
    """

    def __init__(
        self,
        st: float = 0.2,
        k: int = 1,
        window: int | float | None = 0.1,
        n_probe: int = 3,
        seed: int | None = 0,
    ) -> None:
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        self.st = float(st)
        self.k = int(k)
        self.window = window
        self.n_probe = int(n_probe)
        self.seed = seed
        self._index: OnexIndex | None = None
        self._labels: list[int] = []

    # ------------------------------------------------------------------
    def fit(
        self, series: Sequence[Any], labels: Sequence[int]
    ) -> "OnexKnnClassifier":
        """Build the ONEX base over the training series.

        All series must share one length (the UCR convention); their
        labels are attached for voting at prediction time.
        """
        if len(series) != len(labels):
            raise DataError(
                f"got {len(series)} series but {len(labels)} labels"
            )
        if not series:
            raise DataError("training set must not be empty")
        wrapped = [
            values
            if isinstance(values, TimeSeries)
            else TimeSeries(values, name=f"train-{i}", label=int(labels[i]))
            for i, values in enumerate(series)
        ]
        dataset = Dataset(wrapped, name="training")
        if dataset.min_length != dataset.max_length:
            raise DataError("all training series must share one length")
        length = dataset.min_length
        index = OnexIndex.build(
            dataset,
            st=self.st,
            lengths=[length],
            window=self.window,
            seed=self.seed,
        )
        index.processor.n_probe = self.n_probe
        self._index = index
        self._labels = [int(label) for label in labels]
        return self

    # ------------------------------------------------------------------
    @property
    def index(self) -> OnexIndex:
        if self._index is None:
            raise QueryError("classifier is not fitted; call fit() first")
        return self._index

    def predict_one(self, values: Any) -> int:
        """Label of the (majority of the) k nearest training series."""
        index = self.index
        length = index.rspace.lengths[0]
        matches = index.query(values, length=length, k=self.k, normalized=False)
        if not matches:
            raise QueryError("no neighbor found; widen the DTW window")
        votes = Counter(self._labels[m.ssid.series] for m in matches)
        top_count = max(votes.values())
        tied = {label for label, count in votes.items() if count == top_count}
        for match in matches:  # matches are distance-sorted
            label = self._labels[match.ssid.series]
            if label in tied:
                return label
        raise AssertionError("unreachable: some match must carry a tied label")

    def predict(self, series: Sequence[Any]) -> list[int]:
        """Labels for a batch of query series."""
        return [self.predict_one(values) for values in series]

    def score(self, series: Sequence[Any], labels: Sequence[int]) -> float:
        """Classification accuracy in [0, 1] on a labelled test set."""
        if len(series) != len(labels):
            raise DataError(
                f"got {len(series)} series but {len(labels)} labels"
            )
        if not series:
            raise DataError("test set must not be empty")
        predictions = self.predict(series)
        hits = sum(
            1 for got, want in zip(predictions, labels, strict=True) if got == int(want)
        )
        return hits / len(predictions)
