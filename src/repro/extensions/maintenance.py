"""Incremental maintenance of the ONEX base.

The paper builds the base once over a static dataset (its tech report
defers maintenance). This module implements the natural incremental
step: when a new time series arrives, its subsequences are pushed
through the same admission rule as Algorithm 1 — join the nearest
representative if within ``sqrt(L) * ST / 2``, else seed a new group —
against the *current* representatives. Touched groups are re-finalized
(members re-sorted by ED to the updated mean) and the per-length GTI
payloads (Dc matrix, sum order) and SP-Space are recomputed.

The assignment runs on the same construction engine as the offline
build (:class:`~repro.core.grouping.RepresentativeSet`, seeded from the
existing groups): the representative matrix is hoisted **once** per
bucket and updated row-wise in place, instead of the seed
implementation's ``np.stack`` of every representative for every
appended window — an O(groups x length) allocation per subsequence —
and the norm-difference lower bound prunes hopeless representatives.
Rebuilt buckets are store-backed over the extended dataset's columnar
:class:`~repro.data.store.SubsequenceStore` (row indices of the old
series are stable under appending, so untouched groups keep their row
arrays).

Cost: O(new_subsequences x surviving_reps) distance computations plus a
re-finalization of the touched groups — far below a full rebuild, which
re-clusters every subsequence of every series.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.core.group import SimilarityGroup
from repro.core.grouping import RepresentativeSet
from repro.core.onex import OnexIndex
from repro.core.rspace import LengthBucket, RSpace
from repro.core.spspace import SPSpace
from repro.data.dataset import Dataset
from repro.data.normalize import min_max_normalize
from repro.data.store import LengthView, SubsequenceStore
from repro.data.timeseries import TimeSeries
from repro.exceptions import DataError, IndexConstructionError


def _as_series(values: Any, name: str, index: int) -> TimeSeries:
    if isinstance(values, TimeSeries):
        return values
    return TimeSeries(values, name=name or f"series-{index}")


def append_series(
    index: OnexIndex,
    series: Any,
    name: str = "",
    normalized: bool = False,
) -> OnexIndex:
    """Return a new index with ``series`` added, without a full rebuild.

    Parameters
    ----------
    index:
        The existing built index (not modified).
    series:
        The new time series (array-like or :class:`TimeSeries`). Must be
        at least as long as the largest indexed subsequence length.
    name:
        Optional name for the new series.
    normalized:
        Set when the series is already on the index's normalized scale;
        otherwise it is min-max scaled with the index's stored range
        (values outside the original range are clipped by the affine
        map's extrapolation, mirroring what a production system would
        log-and-accept).

    Returns
    -------
    OnexIndex
        A new index over ``N + 1`` series sharing no mutable state with
        the input.
    """
    new_index = len(index.dataset)
    series = _as_series(series, name, new_index)
    if not normalized:
        minimum, maximum = index.value_range
        series = series.with_values(
            min_max_normalize(series.values, minimum, maximum)
        )
    max_length = max(index.rspace.lengths)
    if len(series) < max_length:
        raise IndexConstructionError(
            f"new series of length {len(series)} is shorter than the largest "
            f"indexed subsequence length ({max_length})"
        )

    dataset = Dataset(list(index.dataset) + [series], name=index.dataset.name)
    store = SubsequenceStore(dataset, start_step=index.start_step)
    buckets: dict[int, LengthBucket] = {}
    for bucket in index.rspace:
        buckets[bucket.length] = _extend_bucket(
            bucket, store.view(bucket.length), new_index, index.st, dataset
        )
    rspace = RSpace(buckets)
    spspace = SPSpace(rspace, index.st)
    return OnexIndex(
        dataset=dataset,
        rspace=rspace,
        spspace=spspace,
        st=index.st,
        window=index.window,
        start_step=index.start_step,
        value_range=index.value_range,
        build_seconds=index.build_seconds,
        group_search_width=index.processor.group_search_width,
        use_batch_kernels=index.processor.use_batch_kernels,
        assign_mode=index.assign_mode,
        build_profile=index.build_profile,
    )


def _existing_rows(
    group: SimilarityGroup, view: LengthView
) -> np.ndarray | None:
    """Store rows of a group's members in the extended view.

    Store-backed groups keep their row arrays (appending a series only
    adds rows at the end, existing numbering is stable); legacy groups
    resolve their ids through the vectorized inverse lookup. Returns
    ``None`` for groups whose ids do not address enumerable store rows
    (the persistence ``"ids"`` fallback, e.g. a foreign ``start_step``).
    """
    if group.member_rows is not None:
        return group.member_rows
    try:
        return view.rows_of(
            np.array([ssid.series for ssid in group.member_ids]),
            np.array([ssid.start for ssid in group.member_ids]),
        )
    except DataError:
        return None


def _extend_bucket(
    bucket: LengthBucket,
    view: LengthView,
    series_index: int,
    st: float,
    dataset: Dataset,
) -> LengthBucket:
    """Insert one series' subsequences of this bucket's length."""
    length = bucket.length
    threshold = math.sqrt(length) * st / 2.0
    envelope_radius = bucket.groups[0].envelope_radius

    # Engine state seeded from the existing groups: the representative
    # matrix is stacked once and updated row-wise in place.
    reps = RepresentativeSet.from_groups(
        length,
        np.stack([group.representative for group in bucket.groups]),
        np.array([group.count for group in bucket.groups]),
    )
    n_existing = len(bucket.groups)
    added: dict[int, list[int]] = {}  # group index -> appended store rows

    new_rows = np.flatnonzero(view.series == series_index)
    sq_norms = view.sq_norms(new_rows)
    for position, row in enumerate(new_rows.tolist()):
        window = view.row_values(row)  # zero-copy
        nearest, _ = reps.nearest_sequential(
            window, float(sq_norms[position]), threshold
        )
        if nearest < 0:
            nearest = reps.new_group(window)
        else:
            reps.admit(nearest, window)
        added.setdefault(nearest, []).append(row)

    rebuilt: list[SimilarityGroup] = []
    for g, group in enumerate(bucket.groups):
        rows = added.get(g)
        if rows is None:
            rebuilt.append(group)  # untouched: reuse as-is
            continue
        new_rows_array = np.asarray(rows, dtype=np.int64)
        existing_rows = _existing_rows(group, view)
        if existing_rows is None:
            # Ids off the store's enumeration grid: materialize members
            # explicitly; the rebuilt group stays store-less.
            member_rows = None
            member_matrix = np.concatenate(
                [
                    np.stack(
                        [dataset.subsequence(s) for s in group.member_ids]
                    ),
                    view.values(new_rows_array),
                ]
            )
        else:
            member_rows = np.concatenate([existing_rows, new_rows_array])
            member_matrix = view.values(member_rows)
        rebuilt.append(
            SimilarityGroup.from_members(
                length,
                list(group.member_ids) + view.ids(new_rows_array),
                reps.member_sum(g),
                member_matrix,
                envelope_radius,
                member_rows=member_rows,
            )
        )
    for g in range(n_existing, reps.count):
        rows = np.asarray(added[g], dtype=np.int64)
        rebuilt.append(
            SimilarityGroup.from_members(
                length,
                view.ids(rows),
                reps.member_sum(g),
                view.values(rows),
                envelope_radius,
                member_rows=rows,
            )
        )
    return LengthBucket(length=length, groups=rebuilt, store_view=view)
