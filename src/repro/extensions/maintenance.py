"""Incremental maintenance of the ONEX base.

The paper builds the base once over a static dataset (its tech report
defers maintenance). This module implements the natural incremental
step: when a new time series arrives, its subsequences are pushed
through the same admission rule as Algorithm 1 — join the nearest
representative if within ``sqrt(L) * ST / 2``, else seed a new group —
against the *current* representatives. Touched groups are re-finalized
(members re-sorted by ED to the updated mean) and the per-length GTI
payloads (Dc matrix, sum order) and SP-Space are recomputed.

Cost: O(new_subsequences x groups) distance computations plus a
re-finalization of the touched groups — far below a full rebuild, which
re-clusters every subsequence of every series.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.core.group import SimilarityGroup
from repro.core.onex import OnexIndex
from repro.core.rspace import LengthBucket, RSpace
from repro.core.spspace import SPSpace
from repro.data.dataset import Dataset
from repro.data.normalize import min_max_normalize
from repro.data.timeseries import SubsequenceId, TimeSeries
from repro.exceptions import IndexConstructionError


def _as_series(values: Any, name: str, index: int) -> TimeSeries:
    if isinstance(values, TimeSeries):
        return values
    return TimeSeries(values, name=name or f"series-{index}")


def append_series(
    index: OnexIndex,
    series: Any,
    name: str = "",
    normalized: bool = False,
) -> OnexIndex:
    """Return a new index with ``series`` added, without a full rebuild.

    Parameters
    ----------
    index:
        The existing built index (not modified).
    series:
        The new time series (array-like or :class:`TimeSeries`). Must be
        at least as long as the largest indexed subsequence length.
    name:
        Optional name for the new series.
    normalized:
        Set when the series is already on the index's normalized scale;
        otherwise it is min-max scaled with the index's stored range
        (values outside the original range are clipped by the affine
        map's extrapolation, mirroring what a production system would
        log-and-accept).

    Returns
    -------
    OnexIndex
        A new index over ``N + 1`` series sharing no mutable state with
        the input.
    """
    new_index = len(index.dataset)
    series = _as_series(series, name, new_index)
    if not normalized:
        minimum, maximum = index.value_range
        series = series.with_values(
            min_max_normalize(series.values, minimum, maximum)
        )
    max_length = max(index.rspace.lengths)
    if len(series) < max_length:
        raise IndexConstructionError(
            f"new series of length {len(series)} is shorter than the largest "
            f"indexed subsequence length ({max_length})"
        )

    dataset = Dataset(list(index.dataset) + [series], name=index.dataset.name)
    buckets: dict[int, LengthBucket] = {}
    for bucket in index.rspace:
        buckets[bucket.length] = _extend_bucket(
            bucket, dataset, series, new_index, index.st, index.start_step
        )
    rspace = RSpace(buckets)
    spspace = SPSpace(rspace, index.st)
    return OnexIndex(
        dataset=dataset,
        rspace=rspace,
        spspace=spspace,
        st=index.st,
        window=index.window,
        start_step=index.start_step,
        value_range=index.value_range,
        build_seconds=index.build_seconds,
        group_search_width=index.processor.group_search_width,
        use_batch_kernels=index.processor.use_batch_kernels,
    )


def _extend_bucket(
    bucket: LengthBucket,
    dataset: Dataset,
    series: TimeSeries,
    series_index: int,
    st: float,
    start_step: int,
) -> LengthBucket:
    """Insert one series' subsequences of this bucket's length."""
    length = bucket.length
    threshold = math.sqrt(length) * st / 2.0
    envelope_radius = bucket.groups[0].rep_envelope.radius

    # Working state: per group, the member list (materialized lazily
    # only for groups that actually receive new members).
    members: list[list[tuple[SubsequenceId, np.ndarray]] | None] = [
        None for _ in bucket.groups
    ]
    reps = [group.representative.copy() for group in bucket.groups]
    counts = [group.count for group in bucket.groups]
    new_groups: list[list[tuple[SubsequenceId, np.ndarray]]] = []
    new_reps: list[np.ndarray] = []

    values = series.values
    for start in range(0, len(series) - length + 1, start_step):
        ssid = SubsequenceId(series_index, start, length)
        window = values[start : start + length]
        # Nearest representative over existing + freshly created groups.
        all_reps = reps + new_reps
        stack = np.stack(all_reps)
        diff = stack - window
        distances = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        nearest = int(np.argmin(distances))
        if distances[nearest] > threshold:
            new_groups.append([(ssid, window)])
            new_reps.append(window.astype(np.float64).copy())
            continue
        if nearest < len(reps):
            if members[nearest] is None:
                group = bucket.groups[nearest]
                members[nearest] = [
                    (mid, dataset.subsequence(mid)) for mid in group.member_ids
                ]
            members[nearest].append((ssid, window))
            counts[nearest] += 1
            reps[nearest] += (window - reps[nearest]) / counts[nearest]
        else:
            fresh = nearest - len(reps)
            new_groups[fresh].append((ssid, window))
            n = len(new_groups[fresh])
            new_reps[fresh] += (window - new_reps[fresh]) / n

    rebuilt: list[SimilarityGroup] = []
    for index_in_bucket, group in enumerate(bucket.groups):
        if members[index_in_bucket] is None:
            rebuilt.append(group)  # untouched: reuse as-is
            continue
        rebuilt.append(
            _group_from_members(length, members[index_in_bucket], envelope_radius)
        )
    for group_members in new_groups:
        rebuilt.append(_group_from_members(length, group_members, envelope_radius))
    return LengthBucket(length=length, groups=rebuilt)


def _group_from_members(
    length: int,
    members: list[tuple[SubsequenceId, np.ndarray]],
    envelope_radius: int,
) -> SimilarityGroup:
    (seed_id, seed_values), *rest = members
    group = SimilarityGroup(length, seed_id, seed_values)
    for ssid, window in rest:
        group.add(ssid, window)
    group.finalize([window for _, window in members], envelope_radius)
    return group
