"""Support utilities: union-find, validation helpers and timers."""

from repro.utils.unionfind import UnionFind
from repro.utils.validation import (
    as_float_array,
    check_positive,
    check_probability,
    require,
)
from repro.utils.timing import Timer, timed

__all__ = [
    "UnionFind",
    "as_float_array",
    "check_positive",
    "check_probability",
    "require",
    "Timer",
    "timed",
]
