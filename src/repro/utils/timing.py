"""Small wall-clock timing helpers used by the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator
from typing import TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    ``Timer`` can time several disjoint spans; :attr:`elapsed` is their sum.

    Examples
    --------
    >>> timer = Timer()
    >>> with timer.span():
    ...     _ = sum(range(10))
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    n_spans: int = field(default=0)

    @contextmanager
    def span(self) -> Iterator[None]:
        """Context manager that adds the enclosed duration to the total."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.elapsed += time.perf_counter() - start
            self.n_spans += 1

    def reset(self) -> None:
        """Zero the accumulated time and span count."""
        self.elapsed = 0.0
        self.n_spans = 0

    @property
    def mean(self) -> float:
        """Mean duration per span (0.0 when nothing was timed)."""
        if self.n_spans == 0:
            return 0.0
        return self.elapsed / self.n_spans


def timed(func: Callable[[], T]) -> tuple[T, float]:
    """Run ``func`` once and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start
