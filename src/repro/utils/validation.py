"""Input validation helpers shared across the package."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.exceptions import DataError


def as_float_array(values: Any, name: str = "values") -> np.ndarray:
    """Coerce ``values`` into a 1-D ``float64`` array.

    Raises :class:`~repro.exceptions.DataError` for empty input, wrong
    dimensionality, or non-finite entries (NaN / inf), all of which would
    silently corrupt distance computations downstream.
    """
    try:
        array = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise DataError(f"{name} is not numeric: {exc}") from exc
    if array.ndim != 1:
        raise DataError(f"{name} must be 1-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise DataError(f"{name} must not be empty")
    if not np.all(np.isfinite(array)):
        raise DataError(f"{name} contains NaN or infinite values")
    return array


def require(condition: bool, message: str) -> None:
    """Raise :class:`~repro.exceptions.DataError` unless ``condition`` holds."""
    if not condition:
        raise DataError(message)


def check_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise DataError(f"{name} must be a positive finite number, got {value}")
    return value


def check_probability(value: float, name: str = "value") -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or not 0.0 <= value <= 1.0:
        raise DataError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_lengths(lengths: Sequence[int], max_length: int) -> list[int]:
    """Validate a collection of subsequence lengths against ``max_length``.

    Returns the lengths sorted ascending with duplicates removed.
    """
    cleaned = sorted({int(length) for length in lengths})
    if not cleaned:
        raise DataError("at least one subsequence length is required")
    if cleaned[0] < 2:
        raise DataError(f"subsequence lengths must be >= 2, got {cleaned[0]}")
    if cleaned[-1] > max_length:
        raise DataError(
            f"subsequence length {cleaned[-1]} exceeds the longest series ({max_length})"
        )
    return cleaned
