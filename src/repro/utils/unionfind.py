"""Disjoint-set (union-find) with path compression and union by size.

Used by the SP-Space computation (single-linkage sweep over the
inter-representative distance matrix) and by the threshold-adaptation
merge logic of Algorithm 2.C.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


class UnionFind:
    """Union-find over the integers ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of elements. Must be non-negative.

    Examples
    --------
    >>> uf = UnionFind(4)
    >>> uf.union(0, 1)
    True
    >>> uf.connected(0, 1)
    True
    >>> uf.n_components
    3
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"number of elements must be >= 0, got {n}")
        self._parent = list(range(n))
        self._size = [1] * n
        self._n_components = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint components currently tracked."""
        return self._n_components

    def find(self, x: int) -> int:
        """Return the canonical representative of ``x``'s component."""
        self._check(x)
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression: point every node on the path at the root.
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, x: int, y: int) -> bool:
        """Merge the components of ``x`` and ``y``.

        Returns ``True`` if a merge happened, ``False`` if they already
        shared a component.
        """
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._size[rx] < self._size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        self._size[rx] += self._size[ry]
        self._n_components -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        """Return ``True`` when ``x`` and ``y`` are in the same component."""
        return self.find(x) == self.find(y)

    def component_size(self, x: int) -> int:
        """Return the size of the component containing ``x``."""
        return self._size[self.find(x)]

    def components(self) -> list[list[int]]:
        """Return all components as lists of member indices.

        Components are ordered by their smallest member; members are sorted.
        """
        by_root: dict[int, list[int]] = {}
        for x in range(len(self._parent)):
            by_root.setdefault(self.find(x), []).append(x)
        return sorted(by_root.values(), key=lambda members: members[0])

    def add(self) -> int:
        """Append a fresh singleton element and return its index."""
        index = len(self._parent)
        self._parent.append(index)
        self._size.append(1)
        self._n_components += 1
        return index

    def union_all(self, pairs: Iterable[tuple[int, int]]) -> int:
        """Union every pair in ``pairs``; return the number of merges."""
        merges = 0
        for x, y in pairs:
            if self.union(x, y):
                merges += 1
        return merges

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self._parent)))

    def _check(self, x: int) -> None:
        if not 0 <= x < len(self._parent):
            raise IndexError(
                f"element {x} out of range for UnionFind of size {len(self._parent)}"
            )
