"""The ONEX query language (§5.1): parser and executor for Q1/Q2/Q3."""

from repro.query.tokens import Token, TokenKind, tokenize
from repro.query.ast import (
    MatchSpec,
    Query,
    SeasonalQuery,
    SimilarityQuery,
    ThresholdQuery,
)
from repro.query.parser import parse_query
from repro.query.executor import QueryExecutor

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "MatchSpec",
    "Query",
    "SimilarityQuery",
    "SeasonalQuery",
    "ThresholdQuery",
    "parse_query",
    "QueryExecutor",
]
