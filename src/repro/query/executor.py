"""Binding parsed ONEX queries to a built index.

The executor resolves sequence names against, in order:

1. sequences registered by the analyst (``register_sequence``) — the
   "designed" sample sequences of the paper's motivating example;
2. series names in the indexed dataset (the whole series is the sample);
3. positional references ``X<p>`` (series index ``p``).

For seasonal queries the name must resolve to a dataset series, since
recurring similarity is defined over a series of the dataset.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.onex import OnexIndex
from repro.core.results import Match, SeasonalResult, ThresholdRecommendation
from repro.exceptions import QueryError
from repro.query.ast import (
    Query,
    SeasonalQuery,
    SimilarityQuery,
    ThresholdQuery,
)
from repro.query.parser import parse_query
from repro.utils.validation import as_float_array


class QueryExecutor:
    """Executes ONEX-language queries against one :class:`OnexIndex`.

    Parameters
    ----------
    index:
        The built index to query.
    normalized_inputs:
        When ``False`` (default), registered sequences are assumed to be
        on the original data scale and are normalized with the index's
        stored min/max before searching.
    """

    def __init__(self, index: OnexIndex, normalized_inputs: bool = False) -> None:
        self.index = index
        self.normalized_inputs = normalized_inputs
        self._registered: dict[str, np.ndarray] = {}
        # Name -> series index, built once: the serve loop resolves a
        # name per request, and a linear scan over the dataset would
        # make every query O(n_series) before any search ran. First
        # registration wins, matching the old scan's first-match rule.
        self._series_by_name: dict[str, int] = {}
        for position, series in enumerate(index.dataset):
            self._series_by_name.setdefault(series.name, position)

    # ------------------------------------------------------------------
    def register_sequence(self, name: str, values: Any) -> None:
        """Make a sample sequence addressable as ``seq = <name>``."""
        if not name:
            raise QueryError("sequence name must not be empty")
        self._registered[name] = as_float_array(values, name=f"sequence {name!r}")

    # ------------------------------------------------------------------
    def execute(
        self, query: Query | str
    ) -> list[Match] | SeasonalResult | list[ThresholdRecommendation]:
        """Run a query (AST node or source text) and return its results."""
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, SimilarityQuery):
            return self._execute_similarity(query)
        if isinstance(query, SeasonalQuery):
            return self._execute_seasonal(query)
        if isinstance(query, ThresholdQuery):
            return self._execute_threshold(query)
        raise QueryError(f"unsupported query node {type(query).__name__}")

    # ------------------------------------------------------------------
    def _resolve_values(self, name: str) -> np.ndarray:
        if name in self._registered:
            values = self._registered[name]
            if self.normalized_inputs:
                return values
            return self.index.normalize_query(values)
        series_index = self._resolve_series(name, required=False)
        if series_index is not None:
            return self.index.dataset[series_index].values
        raise QueryError(
            f"unknown sequence {name!r}: register it or use a series name/X<index>"
        )

    def _resolve_series(self, name: str, required: bool = True) -> int | None:
        series_index = self._series_by_name.get(name)
        if series_index is not None:
            return series_index
        if name.upper().startswith("X") and name[1:].isdigit():
            candidate = int(name[1:])
            if 0 <= candidate < len(self.index.dataset):
                return candidate
        if required:
            raise QueryError(
                f"{name!r} does not name a series of dataset "
                f"{self.index.dataset.name!r}"
            )
        return None

    # ------------------------------------------------------------------
    def _execute_similarity(self, query: SimilarityQuery) -> list[Match]:
        # The parser enforces k >= 1; hand-built AST nodes get the same
        # diagnostic on both forms instead of a silent empty range result.
        if query.k is not None and query.k < 1:
            raise QueryError(f"k must be >= 1, got {query.k}")
        values = self._resolve_values(query.seq)
        if query.threshold is not None:
            matches = self.index.within(
                values,
                st=query.threshold,
                length=query.match.length,
                normalized=True,
            )
            # A query giving both a threshold and k asks for the k best
            # *within* the threshold; matches are already DTW-sorted.
            # Without a k condition the range form returns everything.
            if query.k is not None:
                matches = matches[: query.k]
            return matches
        return self.index.query(
            values,
            length=query.match.length,
            k=1 if query.k is None else query.k,
            normalized=True,
        )

    def _execute_seasonal(self, query: SeasonalQuery) -> SeasonalResult:
        assert query.match.length is not None  # enforced by the parser
        series = (
            None if query.seq is None else self._resolve_series(query.seq)
        )
        return self.index.seasonal(query.match.length, series=series)

    def _execute_threshold(
        self, query: ThresholdQuery
    ) -> list[ThresholdRecommendation]:
        return self.index.recommend(
            degree=query.degree, length=query.match.length
        )
