"""AST nodes for the three ONEX query classes (§5.1)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MatchSpec:
    """The ``MATCH = Exact(L) | Any`` clause.

    ``length is None`` encodes ``Any``; an integer encodes ``Exact(L)``.
    """

    length: int | None

    @property
    def is_any(self) -> bool:
        return self.length is None

    def __str__(self) -> str:
        return "Any" if self.length is None else f"Exact({self.length})"


@dataclass(frozen=True)
class SimilarityQuery:
    """Class I (Q1): best-match / range similarity search.

    Attributes
    ----------
    dataset:
        The ``FROM`` identifier (informational; execution binds to one
        index).
    seq:
        Name of the sample sequence ``seq = q``.
    threshold:
        ``Sim <= ST`` range threshold, or ``None`` for ``Sim <= min``
        (best match).
    k:
        Number of matches requested, or ``None`` when the query gave no
        ``k`` condition (best-match form defaults to 1; the range form
        returns everything within the threshold). With both a threshold
        and ``k``, the ``k`` best of the within-threshold results are
        returned.
    match:
        ``Exact(L)`` or ``Any``.
    """

    dataset: str
    seq: str
    threshold: float | None
    k: int | None
    match: MatchSpec


@dataclass(frozen=True)
class SeasonalQuery:
    """Class II (Q2): seasonal similarity.

    ``seq`` names the sample series for the user-driven variant or is
    ``None`` (the paper's ``seq = NULL``) for the data-driven variant.
    ``match.length`` must be exact — seasonal queries are per-length.
    """

    dataset: str
    seq: str | None
    match: MatchSpec


@dataclass(frozen=True)
class ThresholdQuery:
    """Class III (Q3): similarity threshold recommendation.

    ``degree`` is ``'S'``, ``'M'``, ``'L'`` or ``None`` (= recommend all
    degrees); ``match`` selects per-length (Exact) or global (Any)
    recommendations.
    """

    dataset: str
    degree: str | None
    match: MatchSpec


Query = SimilarityQuery | SeasonalQuery | ThresholdQuery
