"""Tokenizer for the ONEX query language.

The paper writes queries in a compact SQL-like syntax (§5.1)::

    OUTPUT Xk FROM D WHERE Sim <= 0.2, seq = q MATCH = Exact(30)
    OUTPUT SeasonalSim FROM D WHERE seq = NULL MATCH = Exact(30)
    OUTPUT ST FROM D WHERE simDegree = S MATCH = Any

Tokens are identifiers (case preserved, keyword matching is
case-insensitive), numbers, and the punctuation ``<= = ( ) ,``.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from collections.abc import Iterator

from repro.exceptions import ParseError


class TokenKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    LE = "<="
    EQ = "="
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    END = "end"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def matches_keyword(self, keyword: str) -> bool:
        """Case-insensitive keyword check (only for identifiers)."""
        return self.kind is TokenKind.IDENT and self.text.upper() == keyword.upper()


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<le><=)
  | (?P<eq>=)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.\-]*)
    """,
    re.VERBOSE,
)

_GROUP_TO_KIND = {
    "le": TokenKind.LE,
    "eq": TokenKind.EQ,
    "lparen": TokenKind.LPAREN,
    "rparen": TokenKind.RPAREN,
    "comma": TokenKind.COMMA,
    "number": TokenKind.NUMBER,
    "ident": TokenKind.IDENT,
}


def tokenize(text: str) -> list[Token]:
    """Tokenize a query string; raises :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}", position=position
            )
        if match.lastgroup != "ws":
            kind = _GROUP_TO_KIND[match.lastgroup]  # type: ignore[index]
            tokens.append(Token(kind=kind, text=match.group(), position=position))
        position = match.end()
    tokens.append(Token(kind=TokenKind.END, text="", position=len(text)))
    return tokens


def iter_significant(tokens: list[Token]) -> Iterator[Token]:
    """All tokens except the terminating END marker."""
    for token in tokens:
        if token.kind is not TokenKind.END:
            yield token
