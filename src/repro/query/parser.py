"""Recursive-descent parser for the ONEX query language (§5.1).

Grammar (keywords case-insensitive)::

    query      := "OUTPUT" target "FROM" IDENT "WHERE" conditions
                  [ "MATCH" "=" match ]
    target     := "ST" | "SeasonalSim" | IDENT
    conditions := condition { "," condition }
    condition  := "Sim" "<=" ( "min" | NUMBER )
                | "seq" "=" ( IDENT | "NULL" )
                | "simDegree" "=" ( "NULL" | "S" | "M" | "L" )
                | "k" "=" NUMBER
    match      := "Exact" "(" NUMBER ")" | "Any"

``target = ST`` yields a :class:`ThresholdQuery`; ``SeasonalSim`` a
:class:`SeasonalQuery`; any other identifier (the paper writes ``Xk``)
a :class:`SimilarityQuery`.
"""

from __future__ import annotations

from repro.exceptions import ParseError
from repro.query.ast import (
    MatchSpec,
    Query,
    SeasonalQuery,
    SimilarityQuery,
    ThresholdQuery,
)
from repro.query.tokens import Token, TokenKind, tokenize

_DEGREES = {"S", "M", "L"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers --------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.END:
            self._index += 1
        return token

    def expect(self, kind: TokenKind, what: str) -> Token:
        token = self.current
        if token.kind is not kind:
            raise ParseError(
                f"expected {what}, found {token.text or 'end of query'!r}",
                position=token.position,
            )
        return self.advance()

    def expect_keyword(self, keyword: str) -> Token:
        token = self.current
        if not token.matches_keyword(keyword):
            raise ParseError(
                f"expected {keyword!r}, found {token.text or 'end of query'!r}",
                position=token.position,
            )
        return self.advance()

    # -- grammar --------------------------------------------------------
    def parse(self) -> Query:
        self.expect_keyword("OUTPUT")
        target = self.expect(TokenKind.IDENT, "an output target")
        # The paper sometimes writes "OUTPUT SeasonalSim {Xp}"; an optional
        # second identifier after the target is tolerated and ignored.
        if (
            self.current.kind is TokenKind.IDENT
            and not self.current.matches_keyword("FROM")
        ):
            self.advance()
        self.expect_keyword("FROM")
        dataset = self.expect(TokenKind.IDENT, "a dataset name").text
        self.expect_keyword("WHERE")
        conditions = self._parse_conditions()
        match = self._parse_match()
        self.expect(TokenKind.END, "end of query")
        return self._assemble(target, dataset, conditions, match)

    def _parse_conditions(self) -> dict[str, object]:
        conditions: dict[str, object] = {}
        while True:
            self._parse_condition(conditions)
            if self.current.kind is TokenKind.COMMA:
                self.advance()
                continue
            break
        return conditions

    def _parse_condition(self, conditions: dict[str, object]) -> None:
        token = self.expect(TokenKind.IDENT, "a condition (Sim / seq / simDegree / k)")
        name = token.text.lower()
        if name == "sim":
            self.expect(TokenKind.LE, "'<='")
            value = self.current
            if value.matches_keyword("min"):
                self.advance()
                conditions["threshold"] = None
            else:
                number = self.expect(TokenKind.NUMBER, "a threshold number or 'min'")
                conditions["threshold"] = float(number.text)
        elif name == "seq":
            self.expect(TokenKind.EQ, "'='")
            value = self.expect(TokenKind.IDENT, "a sequence name or NULL")
            conditions["seq"] = None if value.matches_keyword("NULL") else value.text
        elif name == "simdegree":
            self.expect(TokenKind.EQ, "'='")
            value = self.expect(TokenKind.IDENT, "S, M, L or NULL")
            if value.matches_keyword("NULL"):
                conditions["degree"] = None
            elif value.text.upper() in _DEGREES:
                conditions["degree"] = value.text.upper()
            else:
                raise ParseError(
                    f"unknown similarity degree {value.text!r}",
                    position=value.position,
                )
        elif name == "k":
            self.expect(TokenKind.EQ, "'='")
            number = self.expect(TokenKind.NUMBER, "an integer")
            k = float(number.text)
            if k != int(k) or int(k) < 1:
                raise ParseError(
                    f"k must be a positive integer, got {number.text}",
                    position=number.position,
                )
            conditions["k"] = int(k)
        else:
            raise ParseError(
                f"unknown condition {token.text!r} "
                "(expected Sim, seq, simDegree or k)",
                position=token.position,
            )

    def _parse_match(self) -> MatchSpec:
        if self.current.kind is TokenKind.END:
            return MatchSpec(length=None)
        self.expect_keyword("MATCH")
        self.expect(TokenKind.EQ, "'='")
        token = self.expect(TokenKind.IDENT, "Exact(L) or Any")
        if token.matches_keyword("Any"):
            return MatchSpec(length=None)
        if token.matches_keyword("Exact"):
            self.expect(TokenKind.LPAREN, "'('")
            number = self.expect(TokenKind.NUMBER, "a length")
            self.expect(TokenKind.RPAREN, "')'")
            length = float(number.text)
            if length != int(length) or int(length) < 2:
                raise ParseError(
                    f"Exact length must be an integer >= 2, got {number.text}",
                    position=number.position,
                )
            return MatchSpec(length=int(length))
        raise ParseError(
            f"expected Exact(L) or Any, found {token.text!r}",
            position=token.position,
        )

    def _assemble(
        self,
        target: Token,
        dataset: str,
        conditions: dict[str, object],
        match: MatchSpec,
    ) -> Query:
        if target.matches_keyword("ST"):
            return ThresholdQuery(
                dataset=dataset,
                degree=conditions.get("degree"),  # type: ignore[arg-type]
                match=match,
            )
        if target.matches_keyword("SeasonalSim"):
            if match.is_any:
                raise ParseError(
                    "seasonal queries require MATCH = Exact(L)",
                    position=target.position,
                )
            return SeasonalQuery(
                dataset=dataset,
                seq=conditions.get("seq"),  # type: ignore[arg-type]
                match=match,
            )
        seq = conditions.get("seq")
        if seq is None:
            raise ParseError(
                "similarity queries require a 'seq = <name>' condition",
                position=target.position,
            )
        k = conditions.get("k")
        return SimilarityQuery(
            dataset=dataset,
            seq=str(seq),
            threshold=conditions.get("threshold"),  # type: ignore[arg-type]
            # None = "no k condition": best-match defaults to 1 at
            # execution; the range form returns all qualifying matches.
            k=None if k is None else int(k),  # type: ignore[arg-type]
            match=match,
        )


def parse_query(text: str) -> Query:
    """Parse one ONEX query string into its AST node."""
    if not text or not text.strip():
        raise ParseError("empty query")
    return _Parser(tokenize(text)).parse()
