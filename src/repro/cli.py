"""``onex`` — command-line interface for interactive time series exploration.

Subcommands mirror the ONEX lifecycle:

* ``onex datasets`` — list the built-in synthetic datasets;
* ``onex build`` — run the one-time preprocessing and save an index;
* ``onex info`` — show a saved index's statistics (Table 4 columns);
* ``onex query`` — Class I similarity query (best match / within ST);
* ``onex seasonal`` — Class II seasonal similarity query;
* ``onex recommend`` — Class III threshold recommendation;
* ``onex ql`` — run a query written in the paper's query language;
* ``onex serve`` — long-lived thread-safe serving mode: JSON-lines
  requests on stdin, JSON responses on stdout (see
  :mod:`repro.serve.server` for the protocol; the ``info`` op reports
  the result cache's live hit/miss counters, the active kernel backend
  and the per-stage cascade counters);
* ``onex lint`` — the repo's own AST-based invariant checker
  (:mod:`repro.analysis`): kernel numeric purity, backend-dispatch
  enforcement, the interprocedural lockset race detector, persistence
  atomicity, async safety, determinism and resource lifecycle — with
  SARIF output and a reviewed baseline. Also exposed as
  ``python -m repro.analysis`` for CI.

The global ``--backend {auto,numpy,numba}`` flag (or the
``ONEX_KERNEL_BACKEND`` environment variable) selects the refinement
kernel backend for any subcommand, e.g. ``onex --backend numba serve
index.onex``.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

import numpy as np

from repro.core.onex import OnexIndex
from repro.core.results import Match, SeasonalResult, ThresholdRecommendation
from repro.data.loader import load_ucr_file
from repro.data.synthetic import DATASET_GENERATORS, make_dataset
from repro.distances.backend import get_backend, set_backend
from repro.exceptions import OnexError
from repro.query.executor import QueryExecutor


def _read_sequence_file(path: str) -> np.ndarray:
    """Read a query sequence from a one-column (or comma-separated) file."""
    values: list[float] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            for field in line.replace(",", " ").split():
                values.append(float(field))
    return np.asarray(values, dtype=np.float64)


def _resolve_query_values(index: OnexIndex, args: argparse.Namespace) -> np.ndarray:
    """Build the query sequence from --csv or --series/--start/--length."""
    if args.csv:
        return index.normalize_query(_read_sequence_file(args.csv))
    if args.series is None:
        raise OnexError("provide either --csv FILE or --series INDEX")
    series = index.dataset[args.series]
    start = args.start or 0
    length = args.length or (len(series) - start)
    return series.subsequence(start, length)


def _print_matches(matches: Sequence[Match]) -> None:
    if not matches:
        print("no matches")
        return
    print(f"{'rank':>4}  {'subsequence':20} {'DTW':>10} {'DTW/2n':>10} {'group':>12}")
    for rank, match in enumerate(matches, start=1):
        group = f"G{match.group[0]}.{match.group[1]}"
        print(
            f"{rank:>4}  {str(match.ssid):20} {match.dtw:>10.5f} "
            f"{match.dtw_normalized:>10.5f} {group:>12}"
        )


def _print_seasonal(result: SeasonalResult) -> None:
    scope = "data-driven" if result.series is None else f"series X{result.series}"
    print(
        f"seasonal similarity at length {result.length} ({scope}): "
        f"{len(result)} cluster(s), {result.n_subsequences} subsequence(s)"
    )
    for group in result:
        members = ", ".join(str(ssid) for ssid in group.members[:8])
        suffix = " ..." if len(group.members) > 8 else ""
        print(f"  group {group.group_index}: {len(group)} members: {members}{suffix}")


def _print_recommendations(recs: Sequence[ThresholdRecommendation]) -> None:
    names = {"S": "Strict", "M": "Medium", "L": "Loose"}
    for rec in recs:
        scope = "global" if rec.length is None else f"length {rec.length}"
        high = "inf" if rec.high == float("inf") else f"{rec.high:.4f}"
        print(f"  {names[rec.degree]:6} ({scope}): ST in [{rec.low:.4f}, {high})")


# ----------------------------------------------------------------------
# Subcommand handlers
# ----------------------------------------------------------------------
def _cmd_datasets(_: argparse.Namespace) -> int:
    print("built-in synthetic datasets (UCR substitutes):")
    for name in DATASET_GENERATORS:
        print(f"  {name}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    if args.ucr_file:
        dataset = load_ucr_file(args.ucr_file, name=args.dataset or "")
    else:
        if not args.dataset:
            raise OnexError("provide --dataset NAME or --ucr-file FILE")
        kwargs = {}
        if args.n_series:
            kwargs["n_series"] = args.n_series
        if args.series_length:
            kwargs["length"] = args.series_length
        dataset = make_dataset(args.dataset, seed=args.seed, **kwargs)
    lengths: object = None
    if args.all_lengths:
        lengths = "all"

    def progress(length: int, n_subsequences: int, seconds: float) -> None:
        rate = n_subsequences / seconds if seconds > 0 else float("inf")
        print(
            f"  length {length}: {n_subsequences} subsequences in "
            f"{seconds:.2f}s ({rate:,.0f}/s)"
        )

    index = OnexIndex.build(
        dataset,
        st=args.st,
        lengths=lengths,
        start_step=args.start_step,
        window=args.window,
        seed=args.seed,
        assign_mode=args.assign_mode,
        n_jobs=args.jobs,
        progress=progress,
    )
    index.save(args.out)
    stats = index.stats()
    print(
        f"built ONEX base for {stats.dataset!r}: {stats.n_representatives} "
        f"representatives over {stats.n_subsequences} subsequences "
        f"({stats.size_mb:.3f} MB, {stats.build_seconds:.2f}s)"
    )
    print(f"saved to {args.out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    index = OnexIndex.load(args.index)
    stats = index.stats()
    print(f"dataset:         {stats.dataset}")
    print(f"series:          {stats.n_series}")
    print(f"threshold (ST):  {stats.st}")
    print(f"lengths:         {index.rspace.lengths}")
    print(f"groups:          {stats.n_groups}")
    print(f"representatives: {stats.n_representatives}")
    print(f"subsequences:    {stats.n_subsequences}")
    print(f"index size:      {stats.size_mb:.3f} MB "
          f"(GTI {stats.gti_mb:.3f} + LSI {stats.lsi_mb:.3f} "
          f"+ store {stats.store_mb:.3f})")
    print(f"assign mode:     {index.assign_mode}")
    backend = get_backend()
    print(f"kernel backend:  {backend.name}"
          f"{' (JIT)' if backend.jit else ''}")
    print(f"build backend:   {index.build_backend}")
    if index.build_profile:
        print("build profile:")
        for entry in index.build_profile:
            seconds = entry["seconds"]
            rate = entry["n_subsequences"] / seconds if seconds > 0 else float("inf")
            built_with = entry.get("backend", "numpy")
            print(
                f"  length {entry['length']}: {entry['n_subsequences']} "
                f"subsequences in {seconds:.2f}s ({rate:,.0f}/s, "
                f"{built_with})"
            )
    print(f"ST_half/ST_final (global): {index.spspace.st_half:.4f} / "
          f"{index.spspace.st_final:.4f}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    index = OnexIndex.load(args.index)
    values = _resolve_query_values(index, args)
    if args.within is not None:
        matches = index.within(values, st=args.within, length=args.exact)
    else:
        matches = index.query(values, length=args.exact, k=args.k)
    _print_matches(matches)
    return 0


def _cmd_seasonal(args: argparse.Namespace) -> int:
    index = OnexIndex.load(args.index)
    result = index.seasonal(args.length, series=args.series)
    _print_seasonal(result)
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    index = OnexIndex.load(args.index)
    recs = index.recommend(degree=args.degree, length=args.length)
    scope = "global" if args.length is None else f"length {args.length}"
    print(f"threshold recommendations ({scope}):")
    _print_recommendations(recs)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import OnexService, serve_forever

    if args.shards > 1:
        return _cmd_serve_cluster(args)
    index = OnexIndex.load(args.index)
    with OnexService(
        index, max_workers=args.workers, cache_size=args.cache_size
    ) as service:
        print(
            f"serving {index.dataset.name!r} (lengths {index.rspace.lengths}, "
            f"{service.max_workers} workers, cache {args.cache_size}, "
            f"backend {service.backend.name} warmed in "
            f"{service.backend_warmup_seconds:.3f}s); "
            "one JSON request per line on stdin, Ctrl-D to stop",
            file=sys.stderr,
        )
        return serve_forever(service, sys.stdin, sys.stdout)


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.cluster.router import ClusterRouter

    if args.backend is not None:
        # Workers resolve their backend from the environment.
        os.environ["ONEX_KERNEL_BACKEND"] = args.backend
    router = ClusterRouter(
        args.index,
        n_shards=args.shards,
        n_replicas=args.replicas,
        max_inflight=args.max_inflight,
        cache_size=args.cache_size,
        worker_threads=args.workers,
        replica_timeout_ms=args.replica_timeout_ms,
    )

    async def run() -> int:
        await router.start()
        print(
            f"onex-cluster serving {args.index!r} with "
            f"{router.shard_map.n_shards} shard(s) x "
            f"{router.n_replicas} replica(s) "
            f"{[list(owned) for owned in router.shard_map.shards]}, "
            f"max_inflight={router.max_inflight}",
            file=sys.stderr,
        )
        if args.port is not None:
            return await router.serve_tcp(args.host, args.port)
        return await router.serve_stdio()

    return asyncio.run(run())


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import main as lint_main

    forwarded = list(args.paths)
    if args.select:
        forwarded += ["--select", args.select]
    if args.json_path:
        forwarded += ["--json", args.json_path]
    if args.sarif_path:
        forwarded += ["--sarif", args.sarif_path]
    if args.baseline_path:
        forwarded += ["--baseline", args.baseline_path]
    if args.no_baseline:
        forwarded.append("--no-baseline")
    if args.list_rules:
        forwarded.append("--list-rules")
    return lint_main(forwarded)


def _cmd_ql(args: argparse.Namespace) -> int:
    index = OnexIndex.load(args.index)
    executor = QueryExecutor(index)
    for spec in args.seq or []:
        name, _, path = spec.partition("=")
        if not path:
            raise OnexError(f"--seq expects NAME=FILE, got {spec!r}")
        executor.register_sequence(name, _read_sequence_file(path))
    result = executor.execute(args.query)
    if isinstance(result, SeasonalResult):
        _print_seasonal(result)
    elif result and isinstance(result[0], ThresholdRecommendation):
        _print_recommendations(result)  # type: ignore[arg-type]
    else:
        _print_matches(result)  # type: ignore[arg-type]
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="onex",
        description="ONEX: interactive time series exploration (VLDB 2016).",
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "numpy", "numba"],
        default=None,
        help="kernel backend for the refinement hot path (default: the "
        "ONEX_KERNEL_BACKEND env var, then auto = numba when installed, "
        "numpy otherwise; numba falls back to numpy with a warning when "
        "the package is missing)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list built-in synthetic datasets").set_defaults(
        handler=_cmd_datasets
    )

    p_build = sub.add_parser("build", help="build and save an ONEX base")
    p_build.add_argument("--dataset", help="synthetic dataset name")
    p_build.add_argument("--ucr-file", help="UCR-format text file to index instead")
    p_build.add_argument("--n-series", type=int, help="series count (synthetic)")
    p_build.add_argument(
        "--series-length", type=int, help="series length (synthetic)"
    )
    p_build.add_argument("--st", type=float, default=0.2, help="similarity threshold")
    p_build.add_argument(
        "--window", type=float, default=0.1, help="DTW band as fraction of length"
    )
    p_build.add_argument("--start-step", type=int, default=1)
    p_build.add_argument(
        "--assign-mode",
        choices=["sequential", "minibatch"],
        default="sequential",
        help="construction engine: sequential (Algorithm 1, exact) or "
        "minibatch (chunked BLAS assignment for large builds)",
    )
    p_build.add_argument(
        "--all-lengths",
        action="store_true",
        help="index every length (the paper's full decomposition)",
    )
    p_build.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for construction: each indexed length is an "
        "independent shard over a shared mmap of the subsequence store; "
        "the result is bit-identical for every job count (-1 = all cores)",
    )
    p_build.add_argument("--seed", type=int, default=0)
    p_build.add_argument(
        "--out",
        required=True,
        help="output path: '.npz' writes the legacy single-archive v2 "
        "format; any other path writes the memory-mappable v3 directory "
        "(loaded lazily, bucket by bucket)",
    )
    p_build.set_defaults(handler=_cmd_build)

    p_info = sub.add_parser("info", help="describe a saved index")
    p_info.add_argument("index")
    p_info.set_defaults(handler=_cmd_info)

    p_query = sub.add_parser("query", help="similarity query (Q1)")
    p_query.add_argument("index")
    p_query.add_argument("--csv", help="file with the sample sequence values")
    p_query.add_argument("--series", type=int, help="use a dataset series as sample")
    p_query.add_argument("--start", type=int, default=0)
    p_query.add_argument("--length", type=int)
    p_query.add_argument("--k", type=int, default=1)
    p_query.add_argument(
        "--exact", type=int, default=None, help="MATCH = Exact(L) instead of Any"
    )
    p_query.add_argument(
        "--within", type=float, default=None, help="range form: Sim <= ST"
    )
    p_query.set_defaults(handler=_cmd_query)

    p_seasonal = sub.add_parser("seasonal", help="seasonal similarity query (Q2)")
    p_seasonal.add_argument("index")
    p_seasonal.add_argument("--length", type=int, required=True)
    p_seasonal.add_argument("--series", type=int, default=None)
    p_seasonal.set_defaults(handler=_cmd_seasonal)

    p_rec = sub.add_parser("recommend", help="threshold recommendation (Q3)")
    p_rec.add_argument("index")
    p_rec.add_argument("--degree", choices=["S", "M", "L"], default=None)
    p_rec.add_argument("--length", type=int, default=None)
    p_rec.set_defaults(handler=_cmd_recommend)

    p_serve = sub.add_parser(
        "serve",
        help="serve an index over stdin/stdout (JSON-lines requests)",
    )
    p_serve.add_argument("index")
    p_serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="refinement threads (default: core count, capped at 32)",
    )
    p_serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="LRU result cache capacity (0 disables caching)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard the index across N worker processes behind a "
        "scatter-gather router (requires a v3 index directory; "
        "1 = single-process serving)",
    )
    p_serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="spawn R workers per shard over the same index directory; "
        "the router fails over between replicas on worker death or "
        "per-replica timeout (sharded mode)",
    )
    p_serve.add_argument(
        "--replica-timeout-ms",
        type=float,
        default=None,
        help="per-replica attempt timeout for shard subrequests; a "
        "slow replica is retried on another (default: none — only "
        "request-level timeout_ms bounds an attempt)",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="bounded in-flight request budget for the sharded router; "
        "overload is rejected with a structured 'busy' error",
    )
    p_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --port TCP serving (sharded mode)",
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve the sharded router over TCP instead of stdio",
    )
    p_serve.set_defaults(handler=_cmd_serve)

    p_lint = sub.add_parser(
        "lint",
        help="run the AST-based invariant checker (see DESIGN.md §11)",
        description=(
            "Checks kernel numeric purity (ONEX1xx), backend dispatch "
            "(ONEX2xx), the lockset discipline (ONEX3xx), persistence "
            "atomicity (ONEX4xx), async safety (ONEX5xx), determinism "
            "(ONEX6xx) and resource lifecycle (ONEX7xx). All arguments "
            "are forwarded to `python -m repro.analysis` (paths, "
            "--select CODES, --json FILE, --sarif FILE, --baseline "
            "FILE, --no-baseline, --list-rules). Exit 0 = clean, 1 = "
            "findings."
        ),
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: the repro package)",
    )
    p_lint.add_argument(
        "--select", metavar="CODES", help="comma-separated rule codes to report"
    )
    p_lint.add_argument(
        "--json",
        dest="json_path",
        metavar="FILE",
        help="write the machine-readable report to FILE ('-' = stdout)",
    )
    p_lint.add_argument(
        "--sarif",
        dest="sarif_path",
        metavar="FILE",
        help="write a SARIF 2.1.0 log to FILE ('-' = stdout)",
    )
    p_lint.add_argument(
        "--baseline",
        dest="baseline_path",
        metavar="FILE",
        help="baseline file of grandfathered findings",
    )
    p_lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; every finding fails the run",
    )
    p_lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    p_lint.set_defaults(handler=_cmd_lint)

    p_ql = sub.add_parser("ql", help="run a query in the paper's query language")
    p_ql.add_argument("index")
    p_ql.add_argument("query", help='e.g. "OUTPUT X FROM D WHERE seq = X0 MATCH = Any"')
    p_ql.add_argument(
        "--seq",
        action="append",
        metavar="NAME=FILE",
        help="register a sample sequence from a file",
    )
    p_ql.set_defaults(handler=_cmd_ql)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``onex`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.backend is not None:
            set_backend(args.backend)
        return args.handler(args)
    except OnexError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
