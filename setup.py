"""Legacy setuptools shim.

The offline environment has no ``wheel`` package, so PEP 660 editable
installs (which build a wheel) fail; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` use the legacy
``setup.py develop`` path. All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
