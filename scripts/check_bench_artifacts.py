"""CI silent-skip detector for benchmark artifacts.

A benchmark that quietly skips (collection error, fixture failure
swallowed by ``-q``, a renamed table) leaves ``benchmarks/results/``
missing a JSON artifact — and the upload step's ``if-no-files-found:
warn`` would never fail the job. This script makes absence loud: every
expected table stem must exist as ``<stem>.json``, parse as JSON, and
contain at least one data row.

Usage: python scripts/check_bench_artifacts.py STEM [STEM ...]
       python scripts/check_bench_artifacts.py --dir benchmarks/results ...
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def check(path: str) -> str | None:
    """Return an error string, or None when the artifact is healthy."""
    if not os.path.exists(path):
        return "missing"
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except ValueError as exc:
        return f"unparseable JSON ({exc})"
    if not isinstance(payload, dict):
        return "not a table object"
    rows = payload.get("rows")
    if not rows:
        return "no data rows (empty table)"
    return None


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("stems", nargs="+", help="expected table names")
    parser.add_argument("--dir", default="benchmarks/results")
    args = parser.parse_args()

    failures = 0
    for stem in args.stems:
        path = os.path.join(args.dir, f"{stem}.json")
        error = check(path)
        if error is None:
            print(f"ok {stem}")
        else:
            print(f"FAIL {stem}: {path} {error}")
            failures += 1
    if failures:
        print(
            f"{failures} benchmark artifact(s) missing or empty — "
            "a benchmark silently skipped"
        )
        return 1
    print(f"all {len(args.stems)} benchmark artifacts present and non-empty")
    return 0


if __name__ == "__main__":
    sys.exit(main())
