"""CI smoke: `onex serve --shards 2` must answer bit-identically.

Builds a small fixture index, computes reference answers with an
in-process single-process ``OnexService``, then drives the *real* CLI
entry point (``python -m repro.cli serve IDX --shards 2``) over its
stdio JSON-lines pipe and compares responses by request id.

Query-class ops (``query`` single/batch/exact/any, ``within``,
``seasonal``, ``recommend``) and their error paths must match the
single process byte for byte (canonical JSON with sorted keys).
``info`` / ``health`` / ``metrics`` are structural: the cluster tier
reports shard-level state a single process does not have, so the smoke
asserts the documented shape (per-shard latency histograms, merged
cache and cascade counters) instead of equality.

``--chaos`` runs the failure-model scenario instead: the CLI is
started with ``--shards 2 --replicas 2``, a warm battery establishes
bit-identity, then one replica of **every** shard is SIGKILLed while a
second battery is in flight. The client must see zero errors and
bit-identical answers — router-side failover absorbs the deaths — and
the final ``metrics`` snapshot must show the failovers and restarts
that occurred.

Usage: python scripts/serve_cluster_smoke.py [--chaos] [--out metrics.json]
Exit code 0 on success; the metrics snapshot is written to --out for
upload as a CI artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np  # noqa: E402

from repro.core.onex import OnexIndex  # noqa: E402
from repro.core.persistence import save_index  # noqa: E402
from repro.data.normalize import min_max_normalize_dataset  # noqa: E402
from repro.data.synthetic import make_dataset  # noqa: E402
from repro.serve.server import respond  # noqa: E402
from repro.serve.service import OnexService  # noqa: E402


def build_fixture(path: str) -> OnexIndex:
    dataset = min_max_normalize_dataset(
        make_dataset("ItalyPower", n_series=10, length=32, seed=3)
    )
    index = OnexIndex.build(
        dataset, st=0.25, lengths=[8, 12, 16, 24, 32], normalize=False, seed=0
    )
    save_index(index, path)
    return index


def make_requests(lengths: list[int]) -> list[dict]:
    rng = np.random.default_rng(17)

    def query(length: int) -> list[float]:
        return [float(v) for v in rng.random(length) * 0.8 + 0.1]

    mid = lengths[len(lengths) // 2]
    return [
        {"op": "query", "values": query(10), "id": "q-any"},
        {"op": "query", "values": query(mid), "k": 3, "id": "q-k"},
        {"op": "query", "values": query(mid), "length": mid, "id": "q-exact"},
        {
            "op": "query",
            "queries": [query(length) for length in lengths],
            "k": 2,
            "id": "q-batch",
        },
        {"op": "within", "values": query(mid), "st": 0.6, "id": "w-any"},
        {"op": "seasonal", "length": mid, "id": "s"},
        {"op": "recommend", "id": "r"},
        {"op": "query", "id": "e-novalues"},
        {"op": "wat", "id": "e-unknown"},
    ]


class PipeClient:
    """Tiny id-correlating JSON-lines client over a subprocess pipe."""

    def __init__(self, proc: subprocess.Popen) -> None:
        self.proc = proc
        self._responses: dict = {}
        self._lock = threading.Lock()
        self._reader = threading.Thread(target=self._read, daemon=True)
        self._reader.start()

    def _read(self) -> None:
        for line in self.proc.stdout:
            line = line.strip()
            if not line:
                continue
            try:
                response = json.loads(line)
            except ValueError:
                continue
            with self._lock:
                self._responses[response.get("id")] = response

    def send(self, request: dict) -> None:
        self.proc.stdin.write(json.dumps(request) + "\n")
        self.proc.stdin.flush()

    def wait_for(self, request_id: str, timeout: float = 300.0) -> dict:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if request_id in self._responses:
                    return self._responses.pop(request_id)
            time.sleep(0.01)
        raise TimeoutError(f"no response for {request_id!r}")

    def call(self, request: dict, timeout: float = 300.0) -> dict:
        self.send(request)
        return self.wait_for(request["id"], timeout)


def chaos_main(args: argparse.Namespace) -> int:
    workdir = tempfile.mkdtemp(prefix="onex-chaos-smoke-")
    index_path = os.path.join(workdir, "index_v3")
    index = build_fixture(index_path)
    lengths = index.rspace.lengths
    requests = make_requests(lengths)

    service = OnexService(OnexIndex.load(index_path), cache_size=256)
    expected = {
        request["id"]: json.dumps(
            respond(service, dict(request)), sort_keys=True
        )
        for request in requests
    }
    service.close()

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            index_path,
            "--shards",
            str(args.shards),
            "--replicas",
            "2",
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=None,  # worker banners stream through for CI logs
        text=True,
        env=env,
    )
    client = PipeClient(proc)
    failures = 0
    victims: list[int] = []
    snapshot: dict = {}
    try:
        client.call({"op": "ping", "id": "warm-ping"})

        def battery(tag: str) -> int:
            for request in requests:
                client.send({**request, "id": f"{tag}:{request['id']}"})
            bad = 0
            for request in requests:
                request_id = request["id"]
                got = client.wait_for(f"{tag}:{request_id}")
                got["id"] = request_id  # compare modulo the round tag
                canonical = json.dumps(got, sort_keys=True)
                if canonical != expected[request_id]:
                    print(f"FAIL {tag}:{request_id}: diverged")
                    print(f"  single : {expected[request_id][:240]}")
                    print(f"  cluster: {canonical[:240]}")
                    bad += 1
            print(f"ok {tag}: {len(requests) - bad}/{len(requests)} "
                  "bit-identical")
            return bad

        failures += battery("warm")

        # SIGKILL one replica of every shard while round two is on the
        # wire: the router must fail over without a client-visible error.
        health = client.call({"op": "health", "id": "pre-kill-health"})
        victims = [
            entry["pid"]
            for entry in health["health"]["shards"]
            if entry["replica"] == 0
        ]
        for request in requests:
            client.send({**request, "id": f"mid:{request['id']}"})
        for pid in victims:
            os.kill(pid, signal.SIGKILL)
        print(f"killed replica 0 of every shard: pids {victims}")
        for request in requests:
            request_id = request["id"]
            got = client.wait_for(f"mid:{request_id}")
            got["id"] = request_id
            if json.dumps(got, sort_keys=True) != expected[request_id]:
                print(f"FAIL mid:{request_id}: diverged after SIGKILL")
                failures += 1
        print("ok mid: battery answered across the kills")

        # A full post-kill battery: guaranteed to ride the failover
        # path while the primaries respawn (or after, both must work).
        failures += battery("post")

        metrics = client.call({"op": "metrics", "id": "final-metrics"})
        snapshot = metrics["metrics"]
        health = client.call({"op": "health", "id": "final-health"})
        checks = [
            (snapshot["failovers"] > 0, "failovers recorded"),
            (
                snapshot["worker_restarts"] >= len(victims),
                "killed replicas respawned",
            ),
            (
                snapshot["errors"].get("shard_unavailable", 0) == 0,
                "no shard_unavailable surfaced to clients",
            ),
            (
                health["health"]["status"] in ("ok", "degraded"),
                "cluster still serving",
            ),
        ]
        for passed, label in checks:
            print(("ok " if passed else "FAIL ") + label)
            if not passed:
                failures += 1
    finally:
        try:
            proc.stdin.close()
            proc.wait(timeout=60)
        except Exception:
            proc.kill()

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "scenario": "chaos",
                "shards": args.shards,
                "replicas": 2,
                "killed": len(victims),
                "metrics": snapshot,
            },
            handle,
            indent=2,
        )
    print(f"metrics snapshot written to {args.out}")

    if failures:
        print(f"{failures} chaos check(s) failed")
        return 1
    print(
        "chaos-smoke passed: one replica of every shard SIGKILLed, "
        "zero client-visible errors, bit-identical results"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default="cluster-metrics.json")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the failure-model scenario: --replicas 2, SIGKILL one "
        "replica per shard mid-battery, assert zero client-visible errors",
    )
    args = parser.parse_args()
    if args.chaos:
        return chaos_main(args)

    workdir = tempfile.mkdtemp(prefix="onex-cluster-smoke-")
    index_path = os.path.join(workdir, "index_v3")
    index = build_fixture(index_path)
    lengths = index.rspace.lengths
    requests = make_requests(lengths)

    service = OnexService(OnexIndex.load(index_path), cache_size=256)
    expected = {
        request["id"]: json.dumps(
            respond(service, dict(request)), sort_keys=True
        )
        for request in requests
    }
    service.close()

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    observability = [
        {"op": "info", "id": "obs-info"},
        {"op": "health", "id": "obs-health"},
        {"op": "metrics", "id": "obs-metrics"},
    ]
    payload = "".join(
        json.dumps(request) + "\n"
        for request in requests + observability
    )
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            index_path,
            "--shards",
            str(args.shards),
        ],
        input=payload,
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print(f"FAIL: serve exited {proc.returncode}")
        return 1

    responses = {}
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        response = json.loads(line)
        responses[response.get("id")] = response

    failures = 0
    for request in requests:
        request_id = request["id"]
        got = responses.get(request_id)
        if got is None:
            print(f"FAIL {request_id}: no response")
            failures += 1
            continue
        canonical = json.dumps(got, sort_keys=True)
        if canonical != expected[request_id]:
            print(f"FAIL {request_id}: cluster != single-process")
            print(f"  single : {expected[request_id][:240]}")
            print(f"  cluster: {canonical[:240]}")
            failures += 1
        else:
            print(f"ok {request_id}: bit-identical")

    info = responses.get("obs-info", {})
    health = responses.get("obs-health", {}).get("health", {})
    metrics = responses.get("obs-metrics", {}).get("metrics", {})
    checks = [
        (info.get("ok") is True, "info responds"),
        (info.get("info", {}).get("lengths") == lengths, "info lists lengths"),
        (
            info.get("info", {}).get("n_shards") == args.shards,
            f"info reports {args.shards} shards",
        ),
        (health.get("status") == "ok", "health status ok"),
        (
            len(health.get("shards", [])) == args.shards
            and all(shard["alive"] for shard in health["shards"]),
            "all shards alive",
        ),
        (
            len(health.get("shard_latency", [])) == args.shards,
            "per-shard latency histograms",
        ),
        (
            set(metrics.get("stages", {}))
            == {"parse", "route", "shard_compute", "merge"},
            "per-stage latency histograms",
        ),
        (
            metrics.get("stages", {}).get("shard_compute", {}).get("count", 0)
            > 0,
            "shard_compute observed",
        ),
        (metrics.get("cache", {}).get("misses", 0) > 0, "merged cache counters"),
        (
            metrics.get("query_stats", {}).get("rep_dtw_full", 0) > 0,
            "merged cascade counters",
        ),
    ]
    for passed, label in checks:
        print(("ok " if passed else "FAIL ") + label)
        if not passed:
            failures += 1

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "shards": args.shards,
                "requests": len(requests),
                "metrics": metrics,
                "health": health,
            },
            handle,
            indent=2,
        )
    print(f"metrics snapshot written to {args.out}")

    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("serve-cluster-smoke passed: all responses bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
