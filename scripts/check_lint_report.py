#!/usr/bin/env python
"""Validate the shape of an ``onex lint --json`` report artifact.

CI runs this against the ``onex-lint.json`` it just produced so that a
report-format drift (a renamed key, a version bump without a consumer
update) fails the pipeline loudly instead of silently breaking whoever
parses the artifact downstream. Stdlib-only on purpose: the CI image
has no jsonschema.

Usage: ``python scripts/check_lint_report.py onex-lint.json``
Exit codes: 0 = report is well-formed, 1 = drift/malformed, 2 = usage.
"""

from __future__ import annotations

import json
import sys

EXPECTED_VERSION = 2

#: key -> expected container type at the top level of the report.
TOP_LEVEL = {
    "version": int,
    "files_checked": int,
    "diagnostics": list,
    "suppressed": list,
    "baselined": list,
    "stale_baseline": list,
    "rules": dict,
}

DIAGNOSTIC_KEYS = {
    "path": str,
    "line": int,
    "col": int,
    "code": str,
    "message": str,
}

STALE_KEYS = {"code": str, "path": str, "justification": str}


def fail(message: str) -> "int":
    print(f"check_lint_report: {message}", file=sys.stderr)
    return 1


def check(payload: object) -> int:
    if not isinstance(payload, dict):
        return fail("report must be a JSON object")
    for key, expected in TOP_LEVEL.items():
        if key not in payload:
            return fail(f"missing top-level key {key!r}")
        if not isinstance(payload[key], expected):
            return fail(
                f"key {key!r} must be {expected.__name__}, got "
                f"{type(payload[key]).__name__}"
            )
    if payload["version"] != EXPECTED_VERSION:
        return fail(
            f"report version {payload['version']!r} != expected "
            f"{EXPECTED_VERSION} (update this checker with the format)"
        )
    for section in ("diagnostics", "suppressed", "baselined"):
        for index, entry in enumerate(payload[section]):
            if not isinstance(entry, dict):
                return fail(f"{section}[{index}] must be an object")
            for key, expected in DIAGNOSTIC_KEYS.items():
                if not isinstance(entry.get(key), expected):
                    return fail(
                        f"{section}[{index}].{key} must be "
                        f"{expected.__name__}"
                    )
            if not entry["code"].startswith("ONEX"):
                return fail(
                    f"{section}[{index}].code {entry['code']!r} is not "
                    "an ONEX rule code"
                )
    for index, entry in enumerate(payload["stale_baseline"]):
        if not isinstance(entry, dict):
            return fail(f"stale_baseline[{index}] must be an object")
        for key, expected in STALE_KEYS.items():
            if not isinstance(entry.get(key), expected):
                return fail(
                    f"stale_baseline[{index}].{key} must be "
                    f"{expected.__name__}"
                )
    for code, rule in payload["rules"].items():
        if not code.startswith("ONEX"):
            return fail(f"rule key {code!r} is not an ONEX code")
        if not isinstance(rule, dict) or not isinstance(
            rule.get("name"), str
        ) or not isinstance(rule.get("rationale"), str):
            return fail(f"rule {code!r} needs string name and rationale")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[1], encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        return fail(f"cannot read {argv[1]}: {exc}")
    status = check(payload)
    if status == 0:
        print(
            f"check_lint_report: {argv[1]} ok "
            f"(version {payload['version']}, "
            f"{payload['files_checked']} files, "
            f"{len(payload['diagnostics'])} findings)"
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
