"""Serving-layer throughput: grouped ``query_batch`` vs the per-query loop.

The ISSUE-4 tentpole claims:

* Length-grouped batch execution — stacked representative scans
  (:func:`~repro.distances.batch.dtw_pairs` over every (query,
  representative) pair of a length group) plus thread-pool refinement —
  is at least 2x the throughput of the sequential per-query loop on a
  machine with >= 4 usable cores, with **bit-identical** matches. The
  identity contract is asserted unconditionally; the wall-clock
  contract is core-count-gated exactly like ``bench_parallel_build``
  (the stacked scans alone deliver most of the win even single-core,
  but the refinement fan-out needs real cores to overlap).
* Concurrent queries against a thread-safe :class:`OnexService` over a
  freshly loaded (fully lazy) v3 index return results identical to
  serial execution — hammered here from ``N_THREADS`` threads as a
  throughput-shaped regression, and the cache turns repeat traffic into
  dict lookups (hit-rate reported).

Set ``ONEX_BENCH_QUICK=1`` for the CI smoke run (smaller dataset; both
identity contracts still hold).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.bench.reporting import registry
from repro.core.onex import OnexIndex
from repro.core.persistence import load_index, save_index
from repro.data.normalize import min_max_normalize_dataset
from repro.data.synthetic import make_dataset
from repro.serve import OnexService

QUICK = os.environ.get("ONEX_BENCH_QUICK", "") not in ("", "0")
N_SERIES = 48 if QUICK else 64
SERIES_LENGTH = 192 if QUICK else 256
ST = 0.15
N_QUERIES = 64 if QUICK else 128
N_WORKERS = 4
N_THREADS = 4
MIN_SPEEDUP = 2.0
N_REPEATS = 2  # best-of-2 in both modes: the contract compares wall times
_CORES = os.cpu_count() or 1

_rows: dict[str, list[object]] = {}


def _register() -> None:
    if _rows:
        registry.add_table(
            "serving_throughput",
            f"Serving layer: grouped query_batch vs sequential loop "
            f"(ECG-style, {N_SERIES} series x {SERIES_LENGTH}, "
            f"{N_QUERIES} queries, {_CORES} cores)",
            ["mode", "seconds", "queries/s", "vs sequential"],
            [_rows[key] for key in sorted(_rows)],
        )


@pytest.fixture(scope="module")
def index():
    dataset = min_max_normalize_dataset(
        make_dataset("ECG", n_series=N_SERIES, length=SERIES_LENGTH, seed=3)
    )
    grid = sorted(
        set(
            int(value)
            for value in np.linspace(SERIES_LENGTH // 4, SERIES_LENGTH, 7).round()
        )
    )
    return OnexIndex.build(dataset, st=ST, lengths=grid, normalize=False, seed=0)


@pytest.fixture(scope="module")
def queries(index):
    """Noisy subsequence probes across three indexed lengths."""
    rng = np.random.default_rng(1)
    dataset = index.dataset
    lengths = index.rspace.lengths
    picks = [lengths[0], lengths[len(lengths) // 2], lengths[-2]]
    batch = []
    for _ in range(N_QUERIES):
        length = int(rng.choice(picks))
        series = int(rng.integers(0, len(dataset)))
        start = int(rng.integers(0, len(dataset[series]) - length + 1))
        values = dataset[series].values[start : start + length]
        batch.append(np.clip(values + rng.normal(0, 0.01, length), 0.0, 1.0))
    return batch


def _best_time(run, repeats=N_REPEATS):
    best_seconds = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run()
        best_seconds = min(best_seconds, time.perf_counter() - started)
    return best_seconds, result


def _assert_identical(batch_a, batch_b) -> None:
    assert len(batch_a) == len(batch_b)
    for matches_a, matches_b in zip(batch_a, batch_b, strict=True):
        assert [m.ssid for m in matches_a] == [m.ssid for m in matches_b]
        assert [m.dtw for m in matches_a] == [m.dtw for m in matches_b]


def test_grouped_batch_speedup_and_identity(index, queries) -> None:
    # Hydrate the lazy payloads with one full sequential pass so both
    # timed modes run fully warm — the (first-timed) sequential side
    # must not absorb first-touch payload construction.
    index.query_batch(queries, grouped=False)

    sequential_seconds, sequential = _best_time(
        lambda: index.query_batch(queries, grouped=False)
    )
    grouped_seconds, grouped = _best_time(
        lambda: index.query_batch(queries, grouped=True, max_workers=N_WORKERS)
    )
    speedup = sequential_seconds / grouped_seconds

    _assert_identical(sequential, grouped)

    _rows["a_sequential"] = [
        "sequential per-query loop",
        sequential_seconds,
        len(queries) / sequential_seconds,
        1.0,
    ]
    _rows["b_grouped"] = [
        f"grouped batch ({N_WORKERS} workers)",
        grouped_seconds,
        len(queries) / grouped_seconds,
        speedup,
    ]
    _register()

    # Wall-clock contract: the refinement fan-out needs >= 4 cores to
    # overlap; smaller machines verify identity and report the speedup.
    if _CORES >= N_WORKERS:
        assert speedup >= MIN_SPEEDUP, (
            f"grouped query_batch only {speedup:.2f}x the sequential loop "
            f"(required >= {MIN_SPEEDUP}x on {_CORES} cores)"
        )


def test_concurrent_service_identity_and_cache(index, queries, tmp_path) -> None:
    """N threads against a fresh (fully lazy) v3 index == serial results."""
    v3_path = tmp_path / "serving.onex"
    save_index(index, v3_path)
    serial = load_index(v3_path)
    expected = [serial.query(query) for query in queries]

    hammered = load_index(v3_path)
    assert hammered.rspace.hydrated_lengths == []
    with OnexService(hammered, max_workers=N_THREADS) as service:
        cold_started = time.perf_counter()

        def run(thread_index: int):
            order = list(range(len(queries)))
            shifted = order[thread_index:] + order[:thread_index]
            return {i: service.query(queries[i]) for i in shifted}

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            outcomes = list(pool.map(run, range(N_THREADS)))
        cold_seconds = time.perf_counter() - cold_started

        for outcome in outcomes:
            _assert_identical(
                [outcome[i] for i in range(len(queries))], expected
            )

        # Repeat traffic: everything is now cached.
        warm_started = time.perf_counter()
        warm = [service.query(query) for query in queries]
        warm_seconds = time.perf_counter() - warm_started
        _assert_identical(warm, expected)
        stats = service.cache.stats
        assert stats["hits"] >= len(queries)

    total = N_THREADS * len(queries)
    _rows["c_service_cold"] = [
        f"service, {N_THREADS} threads, cold cache",
        cold_seconds,
        total / cold_seconds,
        "",
    ]
    _rows["d_service_warm"] = [
        f"service, warm cache (hit rate {stats['hit_rate']:.2f})",
        warm_seconds,
        len(queries) / warm_seconds,
        "",
    ]
    _register()
