"""Figure 5 — offline ONEX base construction time varying ST.

Paper §6.3: for low thresholds many groups form and construction is
slow; as ST grows, fewer groups absorb more subsequences and the time
flattens out. One row per dataset, one column per ST value.
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import BENCH_CONFIGS
from repro.bench.reporting import registry
from repro.bench.sweeps import CONSTRUCTION_ST_GRID, construction_sweep

DATASETS = list(BENCH_CONFIGS)
_rows: dict[str, list[float]] = {}


def _register_table() -> None:
    headers = ["dataset"] + [f"ST={st}" for st in CONSTRUCTION_ST_GRID]
    rows = [
        [dataset, *_rows[dataset]] for dataset in DATASETS if dataset in _rows
    ]
    registry.add_table(
        "fig5_construction_time",
        "Fig. 5: offline construction time vs ST (seconds)",
        headers,
        rows,
    )


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5_construction_time(benchmark, dataset: str) -> None:
    points = construction_sweep(dataset)
    _rows[dataset] = [point.build_seconds for point in points]
    _register_table()
    # Construction time must not *increase* with looser thresholds:
    # compare the tightest and loosest points with generous slack.
    assert points[-1].build_seconds <= points[0].build_seconds * 3.0

    from repro.bench.runner import get_context
    from repro.bench.sweeps import _build_at

    context = get_context(dataset)
    benchmark.pedantic(
        lambda: _build_at(context, 0.4), rounds=1, iterations=1
    )
