"""Sharded serving tier: scatter-gather router vs single-process service.

The ISSUE-8 tentpole contracts measured here:

* A 2-shard cluster (real worker subprocesses over the shared mmap'd
  v3 directory) answers a mixed exact-/any-length workload
  **bit-identical** to a single-process :class:`OnexService` — asserted
  unconditionally on the full workload, cold and warm.
* The router's admission control bounds memory under overload: with
  ``max_inflight=1`` and a held shard, excess queries are rejected
  ``busy`` immediately (measured rejection latency is microseconds,
  not queue time).

Reported rows: single-process throughput, cluster cold and warm
throughput (warm = every worker cache hot), and the busy-rejection
fast path. Set ``ONEX_BENCH_QUICK=1`` for the CI smoke run.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import numpy as np
import pytest

from repro.bench.reporting import registry
from repro.core.onex import OnexIndex
from repro.core.persistence import save_index
from repro.serve.cluster.router import ClusterRouter
from repro.serve.server import respond
from repro.serve.service import OnexService

QUICK = os.environ.get("ONEX_BENCH_QUICK", "") not in ("", "0")
N_SERIES = 24 if QUICK else 48
SERIES_LENGTH = 96 if QUICK else 192
ST = 0.2
N_QUERIES = 32 if QUICK else 96
N_SHARDS = 2

_rows: dict[str, list[object]] = {}


def _register() -> None:
    if _rows:
        registry.add_table(
            "cluster_serving",
            f"Sharded serving: {N_SHARDS}-shard scatter-gather router vs "
            f"single process ({N_SERIES} series x {SERIES_LENGTH}, "
            f"{N_QUERIES} queries)",
            ["mode", "seconds", "requests/s", "note"],
            [_rows[key] for key in sorted(_rows)],
        )


@pytest.fixture(scope="module")
def v3_path(tmp_path_factory) -> str:
    from repro.data.normalize import min_max_normalize_dataset
    from repro.data.synthetic import make_dataset

    dataset = min_max_normalize_dataset(
        make_dataset("ECG", n_series=N_SERIES, length=SERIES_LENGTH, seed=9)
    )
    grid = sorted(
        set(
            int(value)
            for value in np.linspace(
                SERIES_LENGTH // 4, SERIES_LENGTH, 5
            ).round()
        )
    )
    index = OnexIndex.build(
        dataset, st=ST, lengths=grid, normalize=False, seed=0
    )
    path = tmp_path_factory.mktemp("bench_cluster") / "index_v3"
    save_index(index, path)
    return str(path)


@pytest.fixture(scope="module")
def workload(v3_path) -> list[dict]:
    """Mixed exact-length and any-length query requests."""
    index = OnexIndex.load(v3_path)
    lengths = index.rspace.lengths
    rng = np.random.default_rng(4)
    requests = []
    for i in range(N_QUERIES):
        length = int(rng.choice(lengths))
        series = int(rng.integers(0, N_SERIES))
        start = int(rng.integers(0, SERIES_LENGTH - length + 1))
        values = index.dataset[series].values[start : start + length]
        values = np.clip(values + rng.normal(0, 0.01, length), 0.0, 1.0)
        request = {
            "op": "query",
            "values": [float(v) for v in values],
            "k": 2,
            "id": i,
        }
        if i % 3 == 0:  # every third query pins the exact length
            request["length"] = length
        requests.append(request)
    return requests


def test_cluster_identity_and_throughput(v3_path, workload) -> None:
    service = OnexService(
        OnexIndex.load(v3_path), max_workers=2, cache_size=2048
    )
    started = time.perf_counter()
    expected = [
        json.dumps(respond(service, dict(request)), sort_keys=True)
        for request in workload
    ]
    single_seconds = time.perf_counter() - started
    service.close()

    async def run():
        router = ClusterRouter(
            v3_path, n_shards=N_SHARDS, max_inflight=64, ping_interval=30
        )
        await router.start()
        try:

            async def drive():
                responses = await asyncio.gather(
                    *(
                        router.process_request(dict(request))
                        for request in workload
                    )
                )
                return [
                    json.dumps(response, sort_keys=True)
                    for response in responses
                ]

            cold_started = time.perf_counter()
            cold = await drive()
            cold_seconds = time.perf_counter() - cold_started
            warm_started = time.perf_counter()
            warm = await drive()
            warm_seconds = time.perf_counter() - warm_started
        finally:
            await router.drain()
        return cold, cold_seconds, warm, warm_seconds

    cold, cold_seconds, warm, warm_seconds = asyncio.run(run())
    assert cold == expected  # bit-identical, every request
    assert warm == expected

    _rows["a_single"] = [
        "single process",
        single_seconds,
        N_QUERIES / single_seconds,
        "baseline",
    ]
    _rows["b_cluster_cold"] = [
        f"{N_SHARDS}-shard cluster, cold",
        cold_seconds,
        N_QUERIES / cold_seconds,
        "bit-identical",
    ]
    _rows["c_cluster_warm"] = [
        f"{N_SHARDS}-shard cluster, warm",
        warm_seconds,
        N_QUERIES / warm_seconds,
        "worker caches hot",
    ]
    _register()


def test_backpressure_rejection_fast_path(v3_path, workload) -> None:
    """Overload answers in microseconds (reject), not queue time."""

    async def run():
        router = ClusterRouter(
            v3_path, n_shards=N_SHARDS, max_inflight=1, ping_interval=30
        )
        await router.start()
        try:
            blocker = asyncio.create_task(
                router.process_request(
                    {"op": "shard_sleep", "shard": 0, "seconds": 1.0}
                )
            )
            await asyncio.sleep(0.2)
            rejected = 0
            started = time.perf_counter()
            for request in workload:
                response = await router.process_request(dict(request))
                if response.get("code") == "busy":
                    rejected += 1
            reject_seconds = time.perf_counter() - started
            await blocker
            busy_count = router.metrics.busy_rejected
        finally:
            await router.drain()
        return rejected, reject_seconds, busy_count

    rejected, reject_seconds, busy_count = asyncio.run(run())
    assert rejected > 0
    assert busy_count >= rejected
    _rows["d_busy"] = [
        "overload (max_inflight=1)",
        reject_seconds,
        rejected / reject_seconds,
        f"{rejected} rejected busy",
    ]
    _register()


def test_replica_failover_cost(v3_path, workload) -> None:
    """Failover price: the workload after killing one replica of every
    shard must stay bit-identical and error-free; the row pair shows
    the healthy-vs-degraded throughput delta (ISSUE 10)."""
    import signal

    service = OnexService(
        OnexIndex.load(v3_path), max_workers=2, cache_size=2048
    )
    expected = [
        json.dumps(respond(service, dict(request)), sort_keys=True)
        for request in workload
    ]
    service.close()

    async def run():
        router = ClusterRouter(
            v3_path,
            n_shards=N_SHARDS,
            n_replicas=2,
            max_inflight=64,
            ping_interval=30,
            respawn_backoff=60.0,  # keep the dead replicas dead
        )
        await router.start()
        try:

            async def drive():
                responses = await asyncio.gather(
                    *(
                        router.process_request(dict(request))
                        for request in workload
                    )
                )
                return [
                    json.dumps(response, sort_keys=True)
                    for response in responses
                ]

            healthy_started = time.perf_counter()
            healthy = await drive()
            healthy_seconds = time.perf_counter() - healthy_started
            for replica_set in router.shards:
                os.kill(replica_set.replicas[0].pid, signal.SIGKILL)
            for replica_set in router.shards:
                while replica_set.replicas[0].alive:
                    await asyncio.sleep(0.02)
            degraded_started = time.perf_counter()
            degraded = await drive()
            degraded_seconds = time.perf_counter() - degraded_started
            failovers = router.metrics.failovers
        finally:
            await router.drain()
        return healthy, healthy_seconds, degraded, degraded_seconds, failovers

    healthy, healthy_seconds, degraded, degraded_seconds, failovers = (
        asyncio.run(run())
    )
    assert healthy == expected
    assert degraded == expected  # failover is invisible to clients
    assert failovers > 0
    _rows["e_replicated"] = [
        f"{N_SHARDS}x2 replicas, healthy",
        healthy_seconds,
        N_QUERIES / healthy_seconds,
        "bit-identical",
    ]
    _rows["f_failover"] = [
        f"{N_SHARDS}x2 replicas, one killed per shard",
        degraded_seconds,
        N_QUERIES / degraded_seconds,
        f"{failovers} failovers, zero errors",
    ]
    _register()
