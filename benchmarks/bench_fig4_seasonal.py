"""Figure 4 — time response for seasonal similarity queries.

Paper §6.2.2: the user-driven case averages, per dataset, 5 sample
series x 5 lengths x 5 repetitions of "find this series' recurring
similar subsequences of length L"; the data-driven case averages 5
random lengths x 5 repetitions of "find all clusters of length L".
Standard DTW / PAA / Trillion cannot answer this query class, so only
ONEX appears (as in the paper).
"""

from __future__ import annotations

import time

import pytest

from repro.bench.datasets import BENCH_CONFIGS
from repro.bench.reporting import registry
from repro.bench.runner import get_context

DATASETS = list(BENCH_CONFIGS)
_REPEATS = 5
_means: dict[tuple[str, str], float] = {}


def _register_table() -> None:
    rows = []
    for dataset in DATASETS:
        rows.append(
            [
                dataset,
                _means.get((dataset, "sample"), "-"),
                _means.get((dataset, "all"), "-"),
            ]
        )
    registry.add_table(
        "fig4_seasonal_time",
        "Fig. 4: seasonal similarity query time (seconds/query)",
        ["dataset", "Seasonal-Sample TS", "Seasonal-All TS"],
        rows,
    )


def _user_driven_mean(dataset: str) -> float:
    context = get_context(dataset)
    index = context.index
    lengths = context.config.lengths
    n_series = min(5, len(context.workload.indexed))
    durations = []
    for series in range(n_series):
        for length in lengths[:5]:
            for _ in range(_REPEATS):
                started = time.perf_counter()
                index.seasonal(length, series=series)
                durations.append(time.perf_counter() - started)
    return sum(durations) / len(durations)


def _data_driven_mean(dataset: str) -> float:
    context = get_context(dataset)
    index = context.index
    durations = []
    for length in context.config.lengths[:5]:
        for _ in range(_REPEATS):
            started = time.perf_counter()
            index.seasonal(length)
            durations.append(time.perf_counter() - started)
    return sum(durations) / len(durations)


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("mode", ("sample", "all"))
def test_fig4_seasonal_time(benchmark, dataset: str, mode: str) -> None:
    if mode == "sample":
        _means[(dataset, mode)] = _user_driven_mean(dataset)
    else:
        _means[(dataset, mode)] = _data_driven_mean(dataset)
    _register_table()

    context = get_context(dataset)
    length = context.config.lengths[0]
    if mode == "sample":
        target = lambda: context.index.seasonal(length, series=0)  # noqa: E731
    else:
        target = lambda: context.index.seasonal(length)  # noqa: E731
    result = benchmark(target)
    assert result is not None
