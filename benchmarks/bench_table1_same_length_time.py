"""Table 1 — time response when the solution must match the query's length.

Paper: ONEX restricted to same-length answers (ONEX-S) vs Trillion;
ONEX-S is on average 3.8x faster. Both systems answer the 20-query
workload with Match = Exact(len(query)).
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import BENCH_CONFIGS
from repro.bench.reporting import registry
from repro.bench.runner import get_context

DATASETS = list(BENCH_CONFIGS)
_means: dict[tuple[str, str], float] = {}


def _register_table() -> None:
    rows = []
    for dataset in DATASETS:
        onex = _means.get((dataset, "ONEX-S"))
        trillion = _means.get((dataset, "Trillion"))
        row = [
            dataset,
            "-" if onex is None else onex,
            "-" if trillion is None else trillion,
        ]
        if onex is not None and trillion is not None and onex > 0:
            row.append(trillion / onex)
        else:
            row.append("-")
        rows.append(row)
    registry.add_table(
        "table1_same_length_time",
        "Table 1: same-length query time (seconds/query; paper: ONEX-S ~3.8x faster)",
        ["dataset", "ONEX-S", "Trillion", "Trillion/ONEX-S"],
        rows,
    )


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("system", ("ONEX-S", "Trillion"))
def test_table1_same_length_time(benchmark, dataset: str, system: str) -> None:
    context = get_context(dataset)
    if system == "ONEX-S":
        run = context.run_onex(same_length=True)
    else:
        run = context.run_baseline(context.trillion, same_length=True)
    _means[(dataset, system)] = run.mean_seconds
    _register_table()

    query = context.workload.queries[0]
    if system == "ONEX-S":
        target = lambda: context.index.query(query.values, length=query.length)  # noqa: E731
    else:
        target = lambda: context.trillion.best_match(  # noqa: E731
            query.values, length=query.length
        )
    benchmark.pedantic(target, rounds=2, iterations=1)
