"""Shared benchmark configuration.

Registers every experiment table produced during the run and prints
them in pytest's terminal summary (terminal-summary output is never
captured, so the paper-style rows always reach the console and any
``tee``'d log). Rendered tables are also written to
``benchmarks/results/``.
"""

from __future__ import annotations

import os

from repro.bench.reporting import registry

registry.output_dir = os.path.join(os.path.dirname(__file__), "results")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    registry.render_all(terminalreporter.write_line)
