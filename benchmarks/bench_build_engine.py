"""Construction engine vs reference Algorithm 1: the offline speedup.

The ISSUE-2 tentpole claim: on a construction-heavy configuration (an
ECG-style dataset whose tight threshold yields thousands of groups at
one length), the columnar-store ``GroupBuilder`` in sequential mode is
at least 3x faster than the reference entry-at-a-time loop while
producing **identical** groups (same member ids, same EDs, bit for
bit). The opt-in minibatch mode is measured alongside; its groups may
differ (documented deviation) but must cover every subsequence exactly
once and satisfy the Lemma 2 radius slack.

Set ``ONEX_BENCH_QUICK=1`` for the CI smoke run (smaller dataset; the
parity assertions still hold).
"""

from __future__ import annotations

import math
import os
import time

import numpy as np
import pytest

from repro.bench.reporting import registry
from repro.core.grouping import (
    build_groups_for_length,
    reference_build_groups_for_length,
)
from repro.data.normalize import min_max_normalize_dataset
from repro.data.synthetic import make_dataset

QUICK = os.environ.get("ONEX_BENCH_QUICK", "") not in ("", "0")
N_SERIES = 40 if QUICK else 120
SERIES_LENGTH = 96 if QUICK else 128
SUBSEQ_LENGTH = 48 if QUICK else 64
ST = 0.05
N_REPEATS = 1 if QUICK else 2
# The full run enforces the ISSUE's 3x contract; the CI smoke run keeps
# a loose sanity floor so a throttled shared runner can't flake the
# build on wall-clock noise (group parity is asserted either way).
MIN_SPEEDUP = 1.2 if QUICK else 3.0

_rows: dict[str, list[object]] = {}


def _register() -> None:
    registry.add_table(
        "build_engine",
        f"Construction engine vs reference Algorithm 1 "
        f"(ECG-style, {N_SERIES} series, L={SUBSEQ_LENGTH}, ST={ST})",
        ["mode", "seconds", "vs reference", "groups"],
        [_rows[key] for key in sorted(_rows)],
    )


@pytest.fixture(scope="module")
def dataset():
    return min_max_normalize_dataset(
        make_dataset("ECG", n_series=N_SERIES, length=SERIES_LENGTH, seed=3)
    )


def _best_time(build, repeats=N_REPEATS):
    best_seconds = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = build()
        best_seconds = min(best_seconds, time.perf_counter() - started)
    return best_seconds, result


def test_sequential_speedup_and_identity(benchmark, dataset) -> None:
    reference_seconds, reference = _best_time(
        lambda: reference_build_groups_for_length(
            dataset, SUBSEQ_LENGTH, ST, np.random.default_rng(0)
        )
    )
    engine_seconds, engine = _best_time(
        lambda: build_groups_for_length(
            dataset, SUBSEQ_LENGTH, ST, np.random.default_rng(0)
        )
    )
    speedup = reference_seconds / engine_seconds

    # Identity contract: same groups, same order, bit-identical payloads.
    assert len(engine) == len(reference)
    for engine_group, reference_group in zip(engine, reference, strict=True):
        assert engine_group.member_ids == reference_group.member_ids
        assert np.array_equal(engine_group.ed_to_rep, reference_group.ed_to_rep)
        assert np.array_equal(
            engine_group.representative, reference_group.representative
        )

    _rows["a_reference"] = ["reference loop", reference_seconds, 1.0, len(reference)]
    _rows["b_sequential"] = [
        "engine sequential",
        engine_seconds,
        speedup,
        len(engine),
    ]
    _register()

    assert speedup >= MIN_SPEEDUP, (
        f"sequential engine only {speedup:.2f}x faster than the reference "
        f"(required >= {MIN_SPEEDUP}x)"
    )

    benchmark.pedantic(
        lambda: build_groups_for_length(
            dataset, SUBSEQ_LENGTH, ST, np.random.default_rng(0)
        ),
        rounds=1,
        iterations=1,
    )


def test_minibatch_mode(benchmark, dataset) -> None:
    reference_seconds, reference = _best_time(
        lambda: reference_build_groups_for_length(
            dataset, SUBSEQ_LENGTH, ST, np.random.default_rng(0)
        ),
        repeats=1,
    )
    minibatch_seconds, minibatch = _best_time(
        lambda: build_groups_for_length(
            dataset,
            SUBSEQ_LENGTH,
            ST,
            np.random.default_rng(0),
            assign_mode="minibatch",
        )
    )

    # Deviation is allowed in the grouping, not in the invariants:
    # exactly-once coverage and the Lemma 2 radius slack.
    assert sum(group.count for group in minibatch) == sum(
        group.count for group in reference
    )
    threshold = math.sqrt(SUBSEQ_LENGTH) * ST / 2.0
    for group in minibatch:
        assert group.ed_to_rep.max() <= threshold * 2.0

    _rows["c_minibatch"] = [
        "engine minibatch",
        minibatch_seconds,
        reference_seconds / minibatch_seconds,
        len(minibatch),
    ]
    _register()

    benchmark.pedantic(
        lambda: build_groups_for_length(
            dataset,
            SUBSEQ_LENGTH,
            ST,
            np.random.default_rng(0),
            assign_mode="minibatch",
        ),
        rounds=1,
        iterations=1,
    )
