"""Figure 6 — size of the pregenerated information varying ST.

Paper §6.3: the number of representatives (= groups) in the R-Space
shrinks monotonically as the similarity threshold loosens, because more
subsequences fall within ST/2 of an existing representative.
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import BENCH_CONFIGS
from repro.bench.reporting import registry
from repro.bench.sweeps import CONSTRUCTION_ST_GRID, construction_sweep

DATASETS = list(BENCH_CONFIGS)
_rows: dict[str, list[int]] = {}


def _register_table() -> None:
    headers = ["dataset"] + [f"ST={st}" for st in CONSTRUCTION_ST_GRID]
    rows = [
        [dataset, *_rows[dataset]] for dataset in DATASETS if dataset in _rows
    ]
    registry.add_table(
        "fig6_representatives",
        "Fig. 6: number of representatives vs ST",
        headers,
        rows,
    )


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig6_representatives(benchmark, dataset: str) -> None:
    points = construction_sweep(dataset)
    _rows[dataset] = [point.n_representatives for point in points]
    _register_table()
    counts = [point.n_representatives for point in points]
    # The paper's headline trend: looser thresholds => fewer representatives.
    assert counts[-1] <= counts[0]
    assert all(count >= 1 for count in counts)

    benchmark.pedantic(lambda: construction_sweep(dataset), rounds=1, iterations=1)
