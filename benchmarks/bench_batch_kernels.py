"""Batch kernels vs scalar kernels: the vectorized-cascade speedup.

The ISSUE-1 tentpole claim: on a representative-scan-heavy bucket (100
ItalyPower-style series, ~1k groups at one length), answering queries
through the batch cascade of :mod:`repro.distances.batch` is at least
3x faster than the scalar reference path while returning *identical*
matches (same ssids, distances within 1e-9). This bench measures both
paths end to end, asserts the contract, and reports per-stack-size
kernel microbenchmarks for the BENCH trajectory.

Set ``ONEX_BENCH_QUICK=1`` for the CI smoke run (fewer queries and
repetitions; the assertions still hold).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.bench.reporting import registry
from repro.core.onex import OnexIndex
from repro.core.query_processor import QueryProcessor
from repro.data.normalize import min_max_normalize_dataset
from repro.data.synthetic import make_dataset
from repro.distances.batch import dtw_batch
from repro.distances.dtw import dtw, resolve_window

QUICK = os.environ.get("ONEX_BENCH_QUICK", "") not in ("", "0")
N_QUERIES = 10 if QUICK else 40
N_REPEATS = 2 if QUICK else 5
# The full run enforces the ISSUE's 3x contract; the CI smoke run keeps
# a loose sanity floor so a throttled shared runner can't flake the
# build on wall-clock noise (result parity is asserted either way).
MIN_SPEEDUP = 1.2 if QUICK else 3.0

_rows: dict[str, list[object]] = {}


def _register() -> None:
    registry.add_table(
        "batch_kernels",
        "Batch kernels vs scalar path (ItalyPower-style bucket, 100 series)",
        ["measurement", "scalar", "batch", "speedup"],
        [_rows[key] for key in sorted(_rows)],
    )


@pytest.fixture(scope="module")
def scan_setup():
    """A 100-series ItalyPower-style dataset indexed into one wide bucket."""
    dataset = min_max_normalize_dataset(
        make_dataset("ItalyPower", n_series=100, length=48, seed=3)
    )
    # A tight threshold yields ~1k groups at length 24: the online cost
    # is dominated by the representative scan, the path the batch
    # cascade accelerates most.
    index = OnexIndex.build(dataset, st=0.05, lengths=[24], normalize=False, seed=0)
    rng = np.random.default_rng(5)
    queries = []
    for _ in range(N_QUERIES):
        series = int(rng.integers(0, len(dataset)))
        start = int(rng.integers(0, 48 - 24))
        noisy = dataset[series].values[start : start + 24] + rng.normal(0, 0.02, 24)
        queries.append(np.clip(noisy, 0.0, 1.0))
    return index, queries


def _run_queries(index, queries, use_batch_kernels: bool):
    processor = QueryProcessor(
        index.rspace,
        index.dataset,
        st=index.st,
        window=index.window,
        use_batch_kernels=use_batch_kernels,
    )
    processor.best_match(queries[0], length=24)  # warm the lazy payloads
    best_seconds = float("inf")
    results = []
    for _ in range(N_REPEATS):
        started = time.perf_counter()
        results = [processor.best_match(query, length=24, k=1) for query in queries]
        best_seconds = min(best_seconds, time.perf_counter() - started)
    return best_seconds, results


def test_batch_scan_speedup_and_parity(benchmark, scan_setup) -> None:
    index, queries = scan_setup
    scalar_seconds, scalar_results = _run_queries(index, queries, False)
    batch_seconds, batch_results = _run_queries(index, queries, True)
    speedup = scalar_seconds / batch_seconds

    for scalar_matches, batch_matches in zip(
        scalar_results, batch_results, strict=True
    ):
        assert scalar_matches[0].ssid == batch_matches[0].ssid
        assert abs(scalar_matches[0].dtw - batch_matches[0].dtw) <= 1e-9

    n_groups = index.rspace.bucket(24).n_groups
    _rows["scan"] = [
        f"best_match s/query ({n_groups} groups)",
        scalar_seconds / len(queries),
        batch_seconds / len(queries),
        speedup,
    ]
    _register()

    assert speedup >= MIN_SPEEDUP, (
        f"batch path only {speedup:.2f}x faster than scalar "
        f"(required >= {MIN_SPEEDUP}x)"
    )

    benchmark.pedantic(
        lambda: _run_queries(index, queries, True), rounds=1, iterations=1
    )


@pytest.mark.parametrize("stack_size", [16, 64, 256])
def test_dtw_batch_kernel_microbench(benchmark, stack_size: int) -> None:
    rng = np.random.default_rng(11)
    length = 24
    query = rng.normal(size=length)
    stack = rng.normal(size=(stack_size, length))
    radius = resolve_window(length, length, 0.1)
    repeats = 3 if QUICK else 10

    started = time.perf_counter()
    for _ in range(repeats):
        batch_distances = dtw_batch(query, stack, radius)
    batch_seconds = (time.perf_counter() - started) / repeats

    started = time.perf_counter()
    for _ in range(repeats):
        scalar_distances = [dtw(query, stack[i], window=0.1) for i in range(stack_size)]
    scalar_seconds = (time.perf_counter() - started) / repeats

    np.testing.assert_allclose(batch_distances, scalar_distances, atol=1e-9)
    _rows[f"kernel_{stack_size:04d}"] = [
        f"dtw_batch k={stack_size} (s/call)",
        scalar_seconds,
        batch_seconds,
        scalar_seconds / batch_seconds,
    ]
    _register()

    benchmark.pedantic(
        lambda: dtw_batch(query, stack, radius), rounds=1, iterations=1
    )
