"""Construction hot path: the fused JIT build kernel vs the numpy engine.

The ISSUE-7 tentpole claims:

* The ``numba`` backend's fused ``build_assign`` kernel — one nopython
  pass over a length's entire Algorithm-1 assignment loop (norm
  shortlist, exact recheck, running-sum admit/refresh), with ``prange``
  parallelism across optimistic snapshot chunks — delivers at least
  **2x** ``build_groups_for_length`` throughput over the vectorized
  numpy engine, with **bit-identical** groups (the kernel makes the
  same admission decisions; the shared numpy finalization then makes
  the payloads equal bit for bit).
* A numpy-only environment runs this whole file green: the registry
  selects the ``numpy`` fallback automatically, the reference timing
  rows are still reported, and the speedup contract is skipped rather
  than failed.

The wall-clock contract is gated on ``numba`` being importable (the CI
JIT leg installs it). Set ``ONEX_BENCH_QUICK=1`` for the CI smoke run.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.bench.reporting import registry
from repro.core.grouping import build_groups_for_length
from repro.data.normalize import min_max_normalize_dataset
from repro.data.synthetic import make_dataset
from repro.distances.backend import get_backend, set_backend
from repro.distances.kernels_numba import NUMBA_AVAILABLE

QUICK = os.environ.get("ONEX_BENCH_QUICK", "") not in ("", "0")
N_SERIES = 64 if QUICK else 128
SERIES_LENGTH = 160 if QUICK else 256
ST = 0.12
LENGTHS = (
    [SERIES_LENGTH // 4, SERIES_LENGTH // 2]
    if QUICK
    else [SERIES_LENGTH // 4, SERIES_LENGTH // 2, SERIES_LENGTH]
)
MIN_SPEEDUP = 2.0
N_REPEATS = 2  # best-of-2: the contract compares wall times

_rows: dict[str, list[object]] = {}


def _register() -> None:
    if _rows:
        registry.add_table(
            "build_jit",
            f"Construction engine: numpy vs fused numba build kernel "
            f"(ECG-style, {N_SERIES} series x {SERIES_LENGTH}, ST={ST}, "
            f"numba={'yes' if NUMBA_AVAILABLE else 'no'})",
            ["length / backend", "seconds", "rows/s", "groups", "vs numpy"],
            [_rows[key] for key in sorted(_rows)],
        )


@pytest.fixture(scope="module")
def dataset():
    return min_max_normalize_dataset(
        make_dataset("ECG", n_series=N_SERIES, length=SERIES_LENGTH, seed=5)
    )


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    set_backend(None)


def _best_time(run, repeats=N_REPEATS):
    best_seconds = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run()
        best_seconds = min(best_seconds, time.perf_counter() - started)
    return best_seconds, result


def _assert_groups_identical(a, b) -> None:
    assert len(a) == len(b)
    for group_a, group_b in zip(a, b, strict=True):
        assert group_a.member_ids == group_b.member_ids
        assert np.array_equal(group_a.ed_to_rep, group_b.ed_to_rep)
        assert np.array_equal(group_a.representative, group_b.representative)
        assert np.array_equal(group_a.member_rows, group_b.member_rows)


def test_build_kernel_speedup_and_identity(dataset) -> None:
    n_rows = {
        length: sum(len(s) - length + 1 for s in dataset)
        for length in LENGTHS
    }

    def run():
        # The same seed per backend: identical visit permutations, so
        # the produced groups must be bit-identical.
        return {
            length: build_groups_for_length(
                dataset, length, ST, np.random.default_rng(0)
            )
            for length in LENGTHS
        }

    set_backend("numpy")
    numpy_seconds, numpy_groups = _best_time(run)
    for length in LENGTHS:
        _rows[f"{length:05d}_a_numpy"] = [
            f"L={length}, numpy",
            numpy_seconds,
            sum(n_rows.values()) / numpy_seconds,
            len(numpy_groups[length]),
            1.0,
        ]
    if not NUMBA_AVAILABLE:
        # Fallback contract: numpy-only environments select the numpy
        # backend automatically, its engine has no fused kernel, and
        # the suite stays green.
        backend = set_backend(None)
        assert backend.name == "numpy"
        assert backend.build_assign is None
        assert get_backend().name == "numpy"
        _register()
        return
    backend = set_backend("numba")
    assert backend.name == "numba" and backend.jit
    assert backend.build_assign is not None
    warmup_seconds = backend.warmup()
    jit_seconds, jit_groups = _best_time(run)
    speedup = numpy_seconds / jit_seconds
    for length in LENGTHS:
        _assert_groups_identical(numpy_groups[length], jit_groups[length])
        _rows[f"{length:05d}_b_numba"] = [
            f"L={length}, numba (warmup {warmup_seconds:.2f}s)",
            jit_seconds,
            sum(n_rows.values()) / jit_seconds,
            len(jit_groups[length]),
            speedup,
        ]
    _register()
    assert speedup >= MIN_SPEEDUP, (
        f"fused build kernel only {speedup:.2f}x the numpy engine "
        f"(required >= {MIN_SPEEDUP}x)"
    )
