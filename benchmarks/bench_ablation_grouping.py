"""Ablation — Algorithm 1 vs radius-constrained k-means grouping.

The paper's tech report discusses alternative clustering methods for
base construction. This bench compares the paper's single-pass
incremental grouping against the k-means alternative on construction
time, group count, and downstream query accuracy.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.accuracy import accuracy_percent
from repro.bench.reporting import registry
from repro.bench.runner import get_context
from repro.core.onex import OnexIndex

DATASETS = ("ItalyPower", "ECG", "Wafer")
STRATEGIES = ("incremental", "kmeans")
_rows: dict[tuple[str, str], list[object]] = {}


def _run(dataset: str, grouping: str) -> list[object]:
    context = get_context(dataset)
    config = context.config
    started = time.perf_counter()
    index = OnexIndex.build(
        context.workload.indexed,
        st=config.st,
        lengths=list(config.lengths),
        start_step=config.start_step,
        window=config.window,
        seed=config.seed,
        normalize=False,
        grouping=grouping,
    )
    build_seconds = time.perf_counter() - started
    distances = []
    durations = []
    for query in context.workload.queries:
        t0 = time.perf_counter()
        matches = index.query(query.values)
        durations.append(time.perf_counter() - t0)
        distances.append(matches[0].dtw_normalized)
    lengths = [q.length for q in context.workload.queries]
    return [
        dataset,
        grouping,
        build_seconds,
        index.rspace.n_groups,
        accuracy_percent(distances, context.exact_any, query_lengths=lengths),
        sum(durations) / len(durations),
    ]


def _register_table() -> None:
    rows = [
        _rows[(dataset, strategy)]
        for dataset in DATASETS
        for strategy in STRATEGIES
        if (dataset, strategy) in _rows
    ]
    registry.add_table(
        "ablation_grouping",
        "Ablation: Algorithm 1 vs k-means grouping",
        ["dataset", "strategy", "build s", "groups", "accuracy %", "query s"],
        rows,
    )


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_ablation_grouping(benchmark, dataset: str, strategy: str) -> None:
    _rows[(dataset, strategy)] = _run(dataset, strategy)
    _register_table()
    # Both strategies must produce a usable base.
    assert _rows[(dataset, strategy)][4] > 80.0

    benchmark.pedantic(
        lambda: _run(dataset, strategy), rounds=1, iterations=1
    )
