"""Table 2 — accuracy when the solution must match the query's length.

Paper: accuracy = (1 - average error) * 100 against the brute-force
exact solution of the same length; ONEX-S 97-99% vs Trillion 71-97%
(Trillion is exact for in-dataset queries but degrades on the held-out
half of the workload once the best same-length match is only a close
match).
"""

from __future__ import annotations

import pytest

from repro.bench.accuracy import accuracy_percent
from repro.bench.datasets import BENCH_CONFIGS
from repro.bench.reporting import registry
from repro.bench.runner import get_context

DATASETS = list(BENCH_CONFIGS)
_accuracy: dict[tuple[str, str], float] = {}


def _register_table() -> None:
    rows = []
    for dataset in DATASETS:
        rows.append(
            [
                dataset,
                _accuracy.get((dataset, "ONEX-S"), "-"),
                _accuracy.get((dataset, "Trillion"), "-"),
            ]
        )
    registry.add_table(
        "table2_same_length_accuracy",
        "Table 2: accuracy, same-length solutions (%; paper: ONEX-S ~+12.6 pts)",
        ["dataset", "ONEX-S", "Trillion"],
        rows,
    )


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("system", ("ONEX-S", "Trillion"))
def test_table2_same_length_accuracy(benchmark, dataset: str, system: str) -> None:
    context = get_context(dataset)
    exact = context.exact_same
    if system == "ONEX-S":
        run = context.run_onex(same_length=True)
    else:
        run = context.run_baseline(context.trillion, same_length=True)
    lengths = [q.length for q in context.workload.queries]
    score = accuracy_percent(run.distances, exact, query_lengths=lengths)
    _accuracy[(dataset, system)] = score
    _register_table()
    assert 0.0 <= score <= 100.0

    query = context.workload.queries[0]
    if system == "ONEX-S":
        target = lambda: context.index.query(query.values, length=query.length)  # noqa: E731
    else:
        target = lambda: context.trillion.best_match(  # noqa: E731
            query.values, length=query.length
        )
    benchmark.pedantic(target, rounds=1, iterations=1)
