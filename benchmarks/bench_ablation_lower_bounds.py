"""Ablation — the lower-bound cascade's contribution.

§5.3 adopts LB_Kim / LB_Keogh pruning with early abandoning for both
ONEX (representative scan) and Trillion (candidate scan). This bench
toggles the stages and reports time per query, quantifying how much of
each system's speed comes from each filter.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.trillion import Trillion
from repro.bench.reporting import registry
from repro.bench.runner import get_context

DATASETS = ("ECG", "Face", "TwoPattern")
VARIANTS = (
    "onex+lb",
    "onex-lb",
    "trillion+kim+keogh",
    "trillion+keogh",
    "trillion+kim",
    "trillion-bare",
)
_rows: dict[tuple[str, str], list[object]] = {}


def _run_onex(dataset: str, use_lower_bounds: bool) -> float:
    context = get_context(dataset)
    # Scalar path: the batch scan changes candidate *ordering* along
    # with pruning when lower bounds toggle, which would confound the
    # ablation (same reason bench_ablation_rep_ordering pins it).
    processor = context.make_processor(
        use_lower_bounds=use_lower_bounds, use_batch_kernels=False
    )
    durations = []
    for query in context.workload.queries:
        started = time.perf_counter()
        processor.best_match(query.values, length=query.length)
        durations.append(time.perf_counter() - started)
    return sum(durations) / len(durations)


def _run_trillion(dataset: str, use_kim: bool, use_keogh: bool) -> float:
    context = get_context(dataset)
    method = Trillion(
        window=context.config.window, use_kim=use_kim, use_keogh=use_keogh
    )
    method.prepare(
        context.workload.indexed,
        context.config.lengths,
        start_step=context.config.start_step,
    )
    durations = []
    for query in context.workload.queries:
        started = time.perf_counter()
        method.best_match(query.values, length=query.length)
        durations.append(time.perf_counter() - started)
    return sum(durations) / len(durations)


def _measure(dataset: str, variant: str) -> list[object]:
    if variant == "onex+lb":
        mean = _run_onex(dataset, True)
    elif variant == "onex-lb":
        mean = _run_onex(dataset, False)
    elif variant == "trillion+kim+keogh":
        mean = _run_trillion(dataset, True, True)
    elif variant == "trillion+keogh":
        mean = _run_trillion(dataset, False, True)
    elif variant == "trillion+kim":
        mean = _run_trillion(dataset, True, False)
    else:
        mean = _run_trillion(dataset, False, False)
    return [dataset, variant, mean]


def _register_table() -> None:
    rows = [
        _rows[(dataset, variant)]
        for dataset in DATASETS
        for variant in VARIANTS
        if (dataset, variant) in _rows
    ]
    registry.add_table(
        "ablation_lower_bounds",
        "Ablation: lower-bound cascade (same-length queries, s/query)",
        ["dataset", "variant", "s/query"],
        rows,
    )


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("variant", VARIANTS)
def test_ablation_lower_bounds(benchmark, dataset: str, variant: str) -> None:
    _rows[(dataset, variant)] = _measure(dataset, variant)
    _register_table()

    benchmark.pedantic(
        lambda: _measure(dataset, variant), rounds=1, iterations=1
    )
