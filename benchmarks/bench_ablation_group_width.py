"""Ablation — in-group search width vs accuracy.

Once the best-matching representative is found, ONEX searches inside
its group in the ED-ordered neighbourhood of DTW(query, rep) (§5.3).
This bench caps how many members are examined ("width") and measures
the accuracy/time trade: width 1 trusts the ED ordering completely,
``None`` (the default) examines every member with early-abandoning DTW.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.accuracy import accuracy_percent
from repro.bench.reporting import registry
from repro.bench.runner import get_context

DATASETS = ("ItalyPower", "ECG", "Face")
WIDTHS: tuple[int | None, ...] = (1, 2, 4, 8, None)
_rows: dict[tuple[str, object], list[object]] = {}


def _run(dataset: str, width: int | None) -> list[object]:
    context = get_context(dataset)
    processor = context.make_processor(group_search_width=width)
    exact = context.exact_any
    durations = []
    distances = []
    for query in context.workload.queries:
        started = time.perf_counter()
        matches = processor.best_match(query.values)
        durations.append(time.perf_counter() - started)
        distances.append(matches[0].dtw_normalized)
    return [
        dataset,
        "all" if width is None else width,
        accuracy_percent(distances, exact,
                         query_lengths=[q.length for q in context.workload.queries]),
        sum(durations) / len(durations),
    ]


def _register_table() -> None:
    rows = [
        _rows[(dataset, width)]
        for dataset in DATASETS
        for width in WIDTHS
        if (dataset, width) in _rows
    ]
    registry.add_table(
        "ablation_group_width",
        "Ablation: in-group search width (Match=Any workload)",
        ["dataset", "width", "accuracy %", "s/query"],
        rows,
    )


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("width", WIDTHS)
def test_ablation_group_width(benchmark, dataset: str, width: int | None) -> None:
    _rows[(dataset, width)] = _run(dataset, width)
    _register_table()

    context = get_context(dataset)
    processor = context.make_processor(group_search_width=width)
    query = context.workload.queries[0]
    benchmark.pedantic(
        lambda: processor.best_match(query.values), rounds=2, iterations=1
    )
