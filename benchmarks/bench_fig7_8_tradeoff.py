"""Figures 7 and 8 — accuracy vs running time when varying ST.

Paper §6.3: for ItalyPower, ECG (Fig. 7), Face and Wafer (Fig. 8), both
accuracy and query time are plotted over ST in 0.1..0.4. Each dataset
has a "balanced" threshold (~0.2) that the paper then uses everywhere
else: accuracy stays high while time drops as groups coarsen.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import registry
from repro.bench.sweeps import TRADEOFF_ST_GRID, tradeoff_sweep

DATASETS = ("ItalyPower", "ECG", "Face", "Wafer")
_rows: dict[str, list[list[object]]] = {}


def _register_table() -> None:
    rows: list[list[object]] = []
    for dataset in DATASETS:
        rows.extend(_rows.get(dataset, []))
    registry.add_table(
        "fig7_8_tradeoff",
        "Fig. 7/8: accuracy vs query time varying ST",
        ["dataset", "ST", "accuracy %", "query s", "build s"],
        rows,
    )


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig7_8_accuracy_time_tradeoff(benchmark, dataset: str) -> None:
    points = tradeoff_sweep(dataset)
    _rows[dataset] = [
        [dataset, p.st, p.accuracy, p.mean_query_seconds, p.build_seconds]
        for p in points
    ]
    _register_table()
    for point in points:
        assert 0.0 <= point.accuracy <= 100.0
    # Accuracy at the paper's operating point (~0.2) should be high.
    at_02 = next(p for p in points if abs(p.st - 0.2) < 1e-9)
    assert at_02.accuracy > 90.0

    benchmark.pedantic(lambda: tradeoff_sweep(dataset), rounds=1, iterations=1)
