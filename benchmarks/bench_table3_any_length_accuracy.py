"""Table 3 — accuracy for any-length solutions.

Paper: ONEX (Match = Any) vs Trillion (which can only answer at the
query's own length) vs PAA, all scored against the brute-force exact
best match over *all* indexed lengths. ONEX ~98-99%, PAA ~93-99%,
Trillion ~72-97% (its restriction to one length is what costs it).
"""

from __future__ import annotations

import pytest

from repro.bench.accuracy import accuracy_percent
from repro.bench.datasets import BENCH_CONFIGS
from repro.bench.reporting import registry
from repro.bench.runner import get_context

DATASETS = list(BENCH_CONFIGS)
SYSTEMS = ("ONEX", "Trillion", "PAA")
_accuracy: dict[tuple[str, str], float] = {}


def _register_table() -> None:
    rows = []
    for dataset in DATASETS:
        rows.append(
            [dataset]
            + [_accuracy.get((dataset, system), "-") for system in SYSTEMS]
        )
    registry.add_table(
        "table3_any_length_accuracy",
        "Table 3: accuracy, any-length solutions (%; paper: ONEX ~+19.5 over Trillion)",
        ["dataset", *SYSTEMS],
        rows,
    )


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("system", SYSTEMS)
def test_table3_any_length_accuracy(benchmark, dataset: str, system: str) -> None:
    context = get_context(dataset)
    exact = context.exact_any
    if system == "ONEX":
        run = context.run_onex()
    elif system == "Trillion":
        run = context.run_baseline(context.trillion)
    else:
        run = context.run_baseline(context.paa)
    lengths = [q.length for q in context.workload.queries]
    score = accuracy_percent(run.distances, exact, query_lengths=lengths)
    _accuracy[(dataset, system)] = score
    _register_table()
    assert 0.0 <= score <= 100.0

    query = context.workload.queries[0]
    if system == "ONEX":
        target = lambda: context.index.query(query.values)  # noqa: E731
    elif system == "Trillion":
        target = lambda: context.trillion.best_match(query.values)  # noqa: E731
    else:
        target = lambda: context.paa.best_match(query.values)  # noqa: E731
    benchmark.pedantic(target, rounds=1, iterations=1)
