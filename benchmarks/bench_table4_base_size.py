"""Table 4 — number of representatives, subsequences and index size.

Paper §6.3: per dataset at its chosen ST (~0.2), the representative
count, the total number of subsequences it summarizes (the data
cardinality reduction) and the index size in MB split into GTI and LSI
components.
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import BENCH_CONFIGS
from repro.bench.reporting import registry
from repro.bench.runner import get_context

DATASETS = list(BENCH_CONFIGS)
_rows: dict[str, list[object]] = {}


def _register_table() -> None:
    rows = [_rows[dataset] for dataset in DATASETS if dataset in _rows]
    registry.add_table(
        "table4_base_size",
        "Table 4: representatives, subsequences and index size (ST=0.2)",
        ["dataset", "representatives", "subsequences", "size MB", "GTI MB", "LSI MB"],
        rows,
    )


@pytest.mark.parametrize("dataset", DATASETS)
def test_table4_base_size(benchmark, dataset: str) -> None:
    context = get_context(dataset)
    stats = context.index.stats()
    _rows[dataset] = [
        dataset,
        stats.n_representatives,
        stats.n_subsequences,
        stats.size_mb,
        stats.gti_mb,
        stats.lsi_mb,
    ]
    _register_table()
    # Data-cardinality reduction is the point of the ONEX base:
    assert stats.n_representatives < stats.n_subsequences

    benchmark.pedantic(context.index.stats, rounds=3, iterations=1)
