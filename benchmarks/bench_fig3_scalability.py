"""Figure 3 — scalability: query time vs number of time series.

Paper: StarLightCurves subsets (series of length 100) with N from 1000
to 5000; Standard DTW and PAA grow steeply while ONEX and Trillion look
flat (Fig. 3a), and the zoom (Fig. 3b) shows Trillion up to 4x slower
than ONEX. This reproduction scales N down by 10x (see DESIGN.md §5)
and reports the same four curves.
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import STARLIGHT_N_GRID, starlight_config
from repro.bench.reporting import registry
from repro.bench.runner import BenchContext, build_context

SYSTEMS = ("ONEX", "Trillion", "PAA", "StandardDTW")

_contexts: dict[int, BenchContext] = {}
_means: dict[tuple[int, str], float] = {}


def _context(n_series: int) -> BenchContext:
    if n_series not in _contexts:
        _contexts[n_series] = build_context(starlight_config(n_series))
    return _contexts[n_series]


def _register_tables() -> None:
    rows = []
    for n in STARLIGHT_N_GRID:
        rows.append([n] + [_means.get((n, system), "-") for system in SYSTEMS])
    registry.add_table(
        "fig3a_scalability",
        "Fig. 3a: query time vs N (StarLightCurves, seconds/query; N scaled 10x down)",
        ["N series", *SYSTEMS],
        rows,
    )
    zoom_rows = []
    for n in STARLIGHT_N_GRID:
        onex = _means.get((n, "ONEX"))
        trillion = _means.get((n, "Trillion"))
        if onex is None or trillion is None:
            continue
        zoom_rows.append([n, onex, trillion, trillion / onex])
    registry.add_table(
        "fig3b_scalability_zoom",
        "Fig. 3b: ONEX vs Trillion zoom (paper: Trillion up to 4x slower)",
        ["N series", "ONEX", "Trillion", "Trillion/ONEX"],
        zoom_rows,
    )


@pytest.mark.parametrize("n_series", STARLIGHT_N_GRID)
@pytest.mark.parametrize("system", SYSTEMS)
def test_fig3_scalability(benchmark, n_series: int, system: str) -> None:
    context = _context(n_series)
    if system == "ONEX":
        run = context.run_onex()
    elif system == "Trillion":
        run = context.run_baseline(context.trillion)
    elif system == "PAA":
        run = context.run_baseline(context.paa)
    else:
        run = context.run_baseline(context.brute)
    _means[(n_series, system)] = run.mean_seconds
    _register_tables()

    query = context.workload.queries[0]
    if system == "ONEX":
        target = lambda: context.index.query(query.values)  # noqa: E731
    elif system == "Trillion":
        target = lambda: context.trillion.best_match(query.values)  # noqa: E731
    elif system == "PAA":
        target = lambda: context.paa.best_match(query.values)  # noqa: E731
    else:
        target = lambda: context.brute.best_match(query.values)  # noqa: E731
    benchmark.pedantic(target, rounds=1, iterations=1)
