"""Figure 2 — time response for similarity queries.

Paper: Fig. 2a compares ONEX, Trillion, PAA and Standard DTW across the
six datasets (log scale); Fig. 2b zooms into ONEX vs Trillion. ONEX
should beat Standard DTW and PAA by orders of magnitude and Trillion by
a small factor (paper: on average 1.8x).

Each system answers the same 20-query §6.2.1 workload (10 in-dataset,
10 held-out); the table reports the average per-query seconds.
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import BENCH_CONFIGS
from repro.bench.reporting import registry
from repro.bench.runner import get_context

DATASETS = list(BENCH_CONFIGS)
SYSTEMS = ("ONEX", "Trillion", "PAA", "StandardDTW")

_means: dict[tuple[str, str], float] = {}


def _run(dataset: str, system: str) -> float:
    context = get_context(dataset)
    if system == "ONEX":
        run = context.run_onex()
    elif system == "Trillion":
        run = context.run_baseline(context.trillion)
    elif system == "PAA":
        run = context.run_baseline(context.paa)
    else:
        run = context.run_baseline(context.brute)
    return run.mean_seconds


def _register_tables() -> None:
    rows_a = []
    for dataset in DATASETS:
        row = [dataset]
        for system in SYSTEMS:
            mean = _means.get((dataset, system))
            row.append("-" if mean is None else mean)
        rows_a.append(row)
    registry.add_table(
        "fig2a_similarity_time",
        "Fig. 2a: similarity query time (seconds/query, Match=Any workload)",
        ["dataset", *SYSTEMS],
        rows_a,
    )
    rows_b = []
    for dataset in DATASETS:
        onex = _means.get((dataset, "ONEX"))
        trillion = _means.get((dataset, "Trillion"))
        if onex is None or trillion is None:
            continue
        rows_b.append([dataset, onex, trillion, trillion / onex])
    registry.add_table(
        "fig2b_onex_vs_trillion",
        "Fig. 2b: ONEX vs Trillion (seconds/query; paper: ONEX ~1.8x faster)",
        ["dataset", "ONEX", "Trillion", "Trillion/ONEX"],
        rows_b,
    )


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("system", SYSTEMS)
def test_fig2_similarity_query_time(benchmark, dataset: str, system: str) -> None:
    """Workload mean goes into the table; the benchmark times one query."""
    _means[(dataset, system)] = _run(dataset, system)
    _register_tables()

    context = get_context(dataset)
    query = context.workload.queries[0]
    if system == "ONEX":
        target = lambda: context.index.query(query.values)  # noqa: E731
    elif system == "Trillion":
        target = lambda: context.trillion.best_match(query.values)  # noqa: E731
    elif system == "PAA":
        target = lambda: context.paa.best_match(query.values)  # noqa: E731
    else:
        target = lambda: context.brute.best_match(query.values)  # noqa: E731
    benchmark.pedantic(target, rounds=2, iterations=1)
