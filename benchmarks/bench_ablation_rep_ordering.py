"""Ablation — does the §5.3 median-sum representative ordering help?

The paper claims starting the representative scan from the "median
representative" of the sorted Dc-sum array (fanning outward) lets early
abandoning kick in sooner than a naive linear scan. We run the same
workload through two query processors that differ only in that flag and
compare query time and the fraction of representatives disposed of
before a full DTW.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.datasets import BENCH_CONFIGS
from repro.bench.reporting import registry
from repro.bench.runner import get_context

DATASETS = list(BENCH_CONFIGS)
_rows: dict[tuple[str, str], list[object]] = {}


def _run(dataset: str, median_ordering: bool) -> list[object]:
    context = get_context(dataset)
    # Scalar path: with batch kernels + lower bounds the scan is
    # lower-bound-ordered, which would mask the ordering ablation.
    processor = context.make_processor(
        median_ordering=median_ordering, use_batch_kernels=False
    )
    durations = []
    full_dtw = 0
    examined = 0
    for query in context.workload.queries:
        started = time.perf_counter()
        processor.best_match(query.values, length=query.length)
        durations.append(time.perf_counter() - started)
        full_dtw += processor.last_stats.rep_dtw_full
        examined += processor.last_stats.reps_examined
    label = "median-out" if median_ordering else "linear"
    mean = sum(durations) / len(durations)
    pruned_pct = 100.0 * (1.0 - full_dtw / max(1, examined))
    return [dataset, label, mean, examined, pruned_pct]


def _register_table() -> None:
    rows = [
        _rows[key]
        for dataset in DATASETS
        for key in ((dataset, "median-out"), (dataset, "linear"))
        if key in _rows
    ]
    registry.add_table(
        "ablation_rep_ordering",
        "Ablation: representative scan order (same-length queries)",
        ["dataset", "ordering", "s/query", "reps examined", "disposed early %"],
        rows,
    )


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("ordering", ("median-out", "linear"))
def test_ablation_rep_ordering(benchmark, dataset: str, ordering: str) -> None:
    median = ordering == "median-out"
    _rows[(dataset, ordering)] = _run(dataset, median)
    _register_table()

    context = get_context(dataset)
    processor = context.make_processor(
        median_ordering=median, use_batch_kernels=False
    )
    query = context.workload.queries[0]
    benchmark.pedantic(
        lambda: processor.best_match(query.values, length=query.length),
        rounds=2,
        iterations=1,
    )
