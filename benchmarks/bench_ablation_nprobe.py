"""Ablation — multi-probe search (extension beyond the paper).

The paper searches exactly one group: the best-matching
representative's. Probing the ``p`` closest representatives instead
recovers accuracy lost to borderline group assignments at a linear cost
in ``p``. This bench sweeps ``p`` on the datasets where single-probe
ONEX loses the most accuracy.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.accuracy import accuracy_percent
from repro.bench.reporting import registry
from repro.bench.runner import get_context

DATASETS = ("TwoPattern", "ECG", "Wafer")
PROBES = (1, 2, 4, 8)
_rows: dict[tuple[str, int], list[object]] = {}


def _run(dataset: str, n_probe: int) -> list[object]:
    context = get_context(dataset)
    processor = context.make_processor(n_probe=n_probe)
    exact = context.exact_any
    lengths = [q.length for q in context.workload.queries]
    durations = []
    distances = []
    for query in context.workload.queries:
        started = time.perf_counter()
        matches = processor.best_match(query.values)
        durations.append(time.perf_counter() - started)
        distances.append(matches[0].dtw_normalized)
    return [
        dataset,
        n_probe,
        accuracy_percent(distances, exact, query_lengths=lengths),
        sum(durations) / len(durations),
    ]


def _register_table() -> None:
    rows = [
        _rows[(dataset, probe)]
        for dataset in DATASETS
        for probe in PROBES
        if (dataset, probe) in _rows
    ]
    registry.add_table(
        "ablation_nprobe",
        "Ablation: multi-probe search (extension; Match=Any workload)",
        ["dataset", "n_probe", "accuracy %", "s/query"],
        rows,
    )


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("n_probe", PROBES)
def test_ablation_nprobe(benchmark, dataset: str, n_probe: int) -> None:
    _rows[(dataset, n_probe)] = _run(dataset, n_probe)
    _register_table()

    context = get_context(dataset)
    processor = context.make_processor(n_probe=n_probe)
    query = context.workload.queries[0]
    benchmark.pedantic(
        lambda: processor.best_match(query.values), rounds=2, iterations=1
    )
