"""Process-parallel sharded build vs sequential + v2/v3 load latency.

The ISSUE-3 tentpole (re-gated by ISSUE 7) claims:

* The sharded construction engine — every length's Algorithm-1 pass as
  an independent worker shard over a shared mmap of the subsequence
  store — is at least 2x faster wall-clock at ``n_jobs=4`` than the
  same engine run sequentially, while producing **bit-identical**
  groups. The speedup is measured engine-vs-engine over identical
  pre-drawn visit permutations (pool startup, the flat-array dump and
  result transport all count against the sharded side); the
  end-to-end ``OnexIndex.build`` wall times are reported alongside
  (they include the serial R-Space/SP-Space assembly both paths
  share). The identity contract is asserted unconditionally — for both
  the shared-memory and the legacy pickle result transports — while
  the wall-clock contract needs >= 4 usable cores, so on smaller
  machines the speedup test **skips visibly** instead of passing a gate
  it never evaluated (CI's ubuntu runners provide 4).
* The per-shard overhead breakdown (worker compute vs result
  serialization: shm packing or the measured pickle tax, plus
  parent-side reconstruction) lands in the JSON artifact, so the
  result-transport cost ISSUE 7 eliminated stays observable.
* Loading the memory-mapped v3 directory format is O(manifest): its
  latency is measured against the legacy v2 ``.npz`` archive (which
  decompresses and hydrates every group eagerly) and reported; with the
  full configuration v3 must win.

Set ``ONEX_BENCH_QUICK=1`` for the CI smoke run (smaller dataset; both
parity contracts still hold).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.bench.reporting import registry
from repro.core.grouping import GroupBuilder
from repro.core.onex import OnexIndex
from repro.core.parallel import build_shards_parallel
from repro.core.persistence import load_index, save_index
from repro.data.normalize import min_max_normalize_dataset
from repro.data.store import SubsequenceStore
from repro.data.synthetic import make_dataset

QUICK = os.environ.get("ONEX_BENCH_QUICK", "") not in ("", "0")
N_SERIES = 96 if QUICK else 144
SERIES_LENGTH = 192 if QUICK else 224
N_LENGTHS = 8
ST = 0.12
N_JOBS = 4
MIN_SPEEDUP = 2.0
N_REPEATS = 1 if QUICK else 2
_CORES = os.cpu_count() or 1

_rows: dict[str, list[object]] = {}
_load_rows: dict[str, list[object]] = {}
_overhead_rows: dict[str, list[object]] = {}


def _register() -> None:
    if _rows:
        registry.add_table(
            "parallel_build",
            f"Sharded construction engine vs sequential (ECG-style, "
            f"{N_SERIES} series x {SERIES_LENGTH}, {N_LENGTHS} lengths, "
            f"ST={ST}, {_CORES} cores)",
            ["phase", "seconds", "vs sequential", "groups"],
            [_rows[key] for key in sorted(_rows)],
        )
    if _overhead_rows:
        registry.add_table(
            "parallel_build_overhead",
            "Per-shard result-transport overhead: worker compute vs "
            "serialization (shm pack / measured pickle tax) vs parent "
            "reconstruction",
            [
                "transport",
                "length",
                "compute s",
                "pack s",
                "unpack s",
                "payload bytes",
            ],
            [_overhead_rows[key] for key in sorted(_overhead_rows)],
        )
    if _load_rows:
        registry.add_table(
            "load_latency",
            "Index load latency: v2 .npz (eager) vs v3 directory (mmap, lazy)",
            ["format", "load seconds", "vs v2", "hydrated buckets at load"],
            [_load_rows[key] for key in sorted(_load_rows)],
        )


@pytest.fixture(scope="module")
def dataset():
    return min_max_normalize_dataset(
        make_dataset("ECG", n_series=N_SERIES, length=SERIES_LENGTH, seed=3)
    )


def _grid() -> list[int]:
    grid = np.linspace(SERIES_LENGTH // 6, SERIES_LENGTH, N_LENGTHS)
    return sorted(set(int(v) for v in grid.round()))


def _best_time(run, repeats=N_REPEATS):
    best_seconds = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run()
        best_seconds = min(best_seconds, time.perf_counter() - started)
    return best_seconds, result


def _assert_groups_identical(a, b) -> None:
    assert len(a) == len(b)
    for group_a, group_b in zip(a, b, strict=True):
        assert group_a.member_ids == group_b.member_ids
        assert np.array_equal(group_a.ed_to_rep, group_b.ed_to_rep)
        assert np.array_equal(group_a.representative, group_b.representative)
        assert np.array_equal(group_a.member_rows, group_b.member_rows)


@pytest.fixture(scope="module")
def engine_runs(dataset):
    """Run the engine sequentially and sharded (both transports) once.

    Shared by the identity and speedup tests so the (expensive) builds
    are not repeated per test; the speedup test skipping on small boxes
    must not skip the identity assertions.
    """
    grid = _grid()
    store = SubsequenceStore(dataset)
    rng = np.random.default_rng(0)
    # The identical pre-drawn permutations OnexIndex.build would use.
    orders = {
        length: rng.permutation(store.view(length).n_rows) for length in grid
    }

    def run_sequential():
        return {
            length: GroupBuilder(length, ST).build(
                store.view(length), order=orders[length]
            )
            for length in grid
        }

    def run_sharded(transport, profile=False):
        return build_shards_parallel(
            store,
            grid,
            orders,
            st=ST,
            n_jobs=N_JOBS,
            result_transport=transport,
            profile_transport=profile,
        )

    sequential_seconds, sequential = _best_time(run_sequential)
    sharded_seconds, shm_shards = _best_time(lambda: run_sharded("shm"))
    pickle_seconds, pickle_shards = _best_time(
        lambda: run_sharded("pickle", profile=True), repeats=1
    )
    return {
        "grid": grid,
        "sequential": sequential,
        "sequential_seconds": sequential_seconds,
        "shm_shards": shm_shards,
        "sharded_seconds": sharded_seconds,
        "pickle_shards": pickle_shards,
        "pickle_seconds": pickle_seconds,
    }


def test_sharded_engine_identity_and_overhead(engine_runs) -> None:
    """Bit-identical buckets on every transport + overhead breakdown.

    Runs (and registers the overhead artifact) regardless of core
    count — only the wall-clock gate below needs real concurrency.
    """
    sequential = engine_runs["sequential"]
    n_groups = 0
    for length in engine_runs["grid"]:
        for shards in (engine_runs["shm_shards"], engine_runs["pickle_shards"]):
            _assert_groups_identical(
                sequential[length], shards[length].groups
            )
        n_groups += len(sequential[length])

    speedup = (
        engine_runs["sequential_seconds"] / engine_runs["sharded_seconds"]
    )
    _rows["a_engine_seq"] = [
        "engine sequential", engine_runs["sequential_seconds"], 1.0, n_groups
    ]
    _rows["b_engine_par"] = [
        f"engine sharded shm (n_jobs={N_JOBS})",
        engine_runs["sharded_seconds"],
        speedup,
        n_groups,
    ]
    _rows["c_engine_par_pickle"] = [
        f"engine sharded pickle (n_jobs={N_JOBS})",
        engine_runs["pickle_seconds"],
        engine_runs["sequential_seconds"] / engine_runs["pickle_seconds"],
        n_groups,
    ]
    for label, shards in (
        ("shm", engine_runs["shm_shards"]),
        ("pickle", engine_runs["pickle_shards"]),
    ):
        for length in engine_runs["grid"]:
            shard = shards[length]
            _overhead_rows[f"{label}_{length:05d}"] = [
                label,
                length,
                shard.seconds,
                shard.pack_seconds,
                shard.unpack_seconds,
                shard.payload_bytes,
            ]
            assert shard.transport == label
    _register()


def test_sharded_engine_speedup(engine_runs) -> None:
    """The >= 2x wall-clock contract, on machines that can express it."""
    if _CORES < N_JOBS:
        _register()
        pytest.skip(
            f"sharded wall-clock gate needs >= {N_JOBS} cores to overlap "
            f"{N_JOBS} shards; this box has {_CORES} (identity was still "
            "asserted)"
        )
    speedup = (
        engine_runs["sequential_seconds"] / engine_runs["sharded_seconds"]
    )
    assert speedup >= MIN_SPEEDUP, (
        f"sharded engine only {speedup:.2f}x faster than sequential "
        f"(required >= {MIN_SPEEDUP}x at n_jobs={N_JOBS})"
    )


def test_end_to_end_build_identity(dataset) -> None:
    """Whole-index builds (including the serial R/SP-Space assembly)."""

    def build(n_jobs):
        return OnexIndex.build(
            dataset, st=ST, lengths=_grid(), normalize=False, seed=0,
            n_jobs=n_jobs,
        )

    sequential_seconds, sequential = _best_time(lambda: build(1), repeats=1)
    parallel_seconds, parallel = _best_time(lambda: build(N_JOBS), repeats=1)

    assert sequential.rspace.lengths == parallel.rspace.lengths
    for length in sequential.rspace.lengths:
        _assert_groups_identical(
            sequential.rspace.bucket(length).groups,
            parallel.rspace.bucket(length).groups,
        )

    _rows["c_full_seq"] = [
        "full build (n_jobs=1)",
        sequential_seconds,
        1.0,
        sequential.rspace.n_groups,
    ]
    _rows["d_full_par"] = [
        f"full build (n_jobs={N_JOBS})",
        parallel_seconds,
        sequential_seconds / parallel_seconds,
        parallel.rspace.n_groups,
    ]
    _register()


def test_load_latency_v2_vs_v3(dataset, tmp_path) -> None:
    index = OnexIndex.build(
        dataset, st=ST, lengths=_grid(), normalize=False, seed=0
    )
    v2_path = tmp_path / "index.npz"
    v3_path = tmp_path / "index.onex"
    save_index(index, v2_path)
    save_index(index, v3_path)

    v2_seconds, from_v2 = _best_time(lambda: load_index(v2_path), repeats=3)
    v3_seconds, from_v3 = _best_time(lambda: load_index(v3_path), repeats=3)

    # v3 is lazy: nothing hydrates until the first query needs it.
    hydrated_v3 = len(load_index(v3_path).rspace.hydrated_lengths)
    assert hydrated_v3 == 0

    _load_rows["a_v2"] = [
        "v2 .npz", v2_seconds, 1.0, len(from_v2.rspace.hydrated_lengths)
    ]
    _load_rows["b_v3"] = [
        "v3 directory", v3_seconds, v2_seconds / v3_seconds, hydrated_v3
    ]
    _register()

    # Both formats answer identically once queried.
    query = dataset[0].values[: _grid()[0]]
    match_v2 = from_v2.query(query, length=_grid()[0])[0]
    match_v3 = from_v3.query(query, length=_grid()[0])[0]
    assert match_v2.ssid == match_v3.ssid
    assert match_v2.dtw == pytest.approx(match_v3.dtw, abs=1e-12)

    if not QUICK:
        assert v3_seconds < v2_seconds, (
            f"v3 mmap load ({v3_seconds:.4f}s) should beat the eager v2 "
            f"archive ({v2_seconds:.4f}s)"
        )
