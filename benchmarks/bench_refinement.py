"""Refinement hot path: the JIT kernel backend vs the numpy reference.

The ISSUE-5 tentpole claims:

* The ``numba`` kernel backend — nopython banded early-abandoning DTW,
  LB kernels, and per-lane batch DPs, dispatched through
  :mod:`repro.distances.backend` — delivers at least **2x** end-to-end
  ``best_match`` and ``within_threshold`` throughput over the numpy
  reference, with **bit-identical** match ids and distances (the JIT
  kernels reproduce the numpy float64 operation order exactly).
* A numpy-only environment runs this whole file green: the registry
  selects the ``numpy`` fallback automatically, the identity/throughput
  rows are reported for the reference backend alone, and the speedup
  contract is skipped rather than failed.

The wall-clock contract is gated on ``numba`` being importable (the CI
JIT leg installs it); the speedup is single-threaded JIT-vs-interpreter,
so no core-count gate is needed beyond that. Set ``ONEX_BENCH_QUICK=1``
for the CI smoke run.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.bench.reporting import registry
from repro.core.onex import OnexIndex
from repro.data.normalize import min_max_normalize_dataset
from repro.data.synthetic import make_dataset
from repro.distances.backend import get_backend, set_backend
from repro.distances.kernels_numba import NUMBA_AVAILABLE

QUICK = os.environ.get("ONEX_BENCH_QUICK", "") not in ("", "0")
N_SERIES = 24 if QUICK else 48
SERIES_LENGTH = 128 if QUICK else 256
ST = 0.15
N_QUERIES = 24 if QUICK else 64
N_WITHIN = 8 if QUICK else 16
MIN_SPEEDUP = 2.0
N_REPEATS = 2  # best-of-2: the contract compares wall times

_rows: dict[str, list[object]] = {}


def _register() -> None:
    if _rows:
        registry.add_table(
            "refinement_backends",
            f"Refinement kernels: numpy reference vs numba JIT backend "
            f"(ECG-style, {N_SERIES} series x {SERIES_LENGTH}, "
            f"numba={'yes' if NUMBA_AVAILABLE else 'no'})",
            ["workload / backend", "seconds", "queries/s", "vs numpy"],
            [_rows[key] for key in sorted(_rows)],
        )


@pytest.fixture(scope="module")
def index():
    dataset = min_max_normalize_dataset(
        make_dataset("ECG", n_series=N_SERIES, length=SERIES_LENGTH, seed=7)
    )
    grid = sorted(
        set(
            int(value)
            for value in np.linspace(SERIES_LENGTH // 4, SERIES_LENGTH, 5).round()
        )
    )
    return OnexIndex.build(dataset, st=ST, lengths=grid, normalize=False, seed=0)


@pytest.fixture(scope="module")
def queries(index):
    """Noisy subsequence probes across the indexed lengths."""
    rng = np.random.default_rng(11)
    dataset = index.dataset
    lengths = index.rspace.lengths
    picks = [lengths[0], lengths[len(lengths) // 2], lengths[-1]]
    batch = []
    for _ in range(N_QUERIES):
        length = int(rng.choice(picks))
        series = int(rng.integers(0, len(dataset)))
        start = int(rng.integers(0, len(dataset[series]) - length + 1))
        values = dataset[series].values[start : start + length]
        batch.append(np.clip(values + rng.normal(0, 0.01, length), 0.0, 1.0))
    return batch


def _best_time(run, repeats=N_REPEATS):
    best_seconds = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run()
        best_seconds = min(best_seconds, time.perf_counter() - started)
    return best_seconds, result


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    set_backend(None)


def _assert_identical(batch_a, batch_b) -> None:
    assert len(batch_a) == len(batch_b)
    for matches_a, matches_b in zip(batch_a, batch_b, strict=True):
        assert [m.ssid for m in matches_a] == [m.ssid for m in matches_b]
        assert [m.dtw for m in matches_a] == [m.dtw for m in matches_b]


def _compare_backends(workload: str, run, n_items: int) -> None:
    """Time ``run`` under each backend; assert identity and speedup."""
    set_backend("numpy")
    run()  # hydrate payloads so both sides run warm
    numpy_seconds, numpy_results = _best_time(run)
    _rows[f"{workload}_a_numpy"] = [
        f"{workload}, numpy",
        numpy_seconds,
        n_items / numpy_seconds,
        1.0,
    ]
    if not NUMBA_AVAILABLE:
        # Fallback contract: numpy-only environments select the numpy
        # backend automatically and the suite stays green.
        assert set_backend(None).name == "numpy"
        assert get_backend().name == "numpy"
        _register()
        return
    backend = set_backend("numba")
    assert backend.name == "numba" and backend.jit
    warmup_seconds = backend.warmup()
    jit_seconds, jit_results = _best_time(run)
    speedup = numpy_seconds / jit_seconds
    _assert_identical(numpy_results, jit_results)
    _rows[f"{workload}_b_numba"] = [
        f"{workload}, numba (warmup {warmup_seconds:.2f}s)",
        jit_seconds,
        n_items / jit_seconds,
        speedup,
    ]
    _register()
    assert speedup >= MIN_SPEEDUP, (
        f"{workload}: JIT backend only {speedup:.2f}x the numpy reference "
        f"(required >= {MIN_SPEEDUP}x)"
    )


def test_best_match_backend_speedup_and_identity(index, queries) -> None:
    _compare_backends(
        "best_match",
        lambda: [index.query(query, k=3) for query in queries],
        len(queries),
    )


def test_within_threshold_backend_speedup_and_identity(index, queries) -> None:
    # Pin each range query to its own (indexed) length: the refinement
    # cost per query stays one bucket's scalar DTW sweep — the exact
    # loop the JIT targets — instead of every length's.
    subset = queries[:N_WITHIN]
    _compare_backends(
        "within_threshold",
        lambda: [
            index.within(query, st=ST, length=query.shape[0])
            for query in subset
        ],
        len(subset),
    )
